"""Shared cluster builder and run loop for every experiment.

``build_cluster`` wires up any of the six schedulers the paper compares
(§8 "Schedulers") behind the same workload/client/metrics machinery, so a
figure module is just a parameter sweep:

    config = ClusterConfig(scheduler="draconis")
    result = run_workload(config, workload_factory, duration_ns=ms(200))
    print(result.scheduling.row())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.baselines.push_worker import PushWorker
from repro.baselines.r2p2 import R2P2Program
from repro.baselines.racksched import RackSchedProgram
from repro.baselines.server_scheduler import (
    DPDK_SERVER,
    SOCKET_SERVER,
    ServerProfile,
    ServerScheduler,
)
from repro.baselines.sparrow import SparrowScheduler
from repro.cluster.client import Client, ClientConfig
from repro.cluster.executor import ExecutorConfig, LocalityCostModel
from repro.cluster.task import SubmitEvent
from repro.cluster.worker import Worker, WorkerSpec
from repro.core.policies import Policy
from repro.core.scheduler import DEFAULT_PULL_TTL_NS, DraconisProgram
from repro.ctrl import (
    DEFAULT_JOURNAL_CAPACITY,
    DEFAULT_LEASE_NS,
    CheckpointManager,
    Controller,
    ControllerGroup,
    DegradationPolicy,
)
from repro.errors import ConfigurationError
from repro.experiments import calibration
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import (
    LatencySummary,
    NetworkFaultSummary,
    summarize_links,
    summarize_ns,
)
from repro.net.packet import Address
from repro.net.topology import BaseSwitch, StarTopology
from repro.obs.bus import TelemetryBus
from repro.sim.core import Simulator, ms
from repro.sim.rng import RngStreams
from repro.switchsim.pipeline import ProgrammableSwitch

SCHEDULERS = (
    "draconis",
    "draconis-dpdk",
    "draconis-socket",
    "r2p2",
    "racksched",
    "sparrow",
)


@dataclass
class ClusterConfig:
    """Everything needed to stand up one scheduler configuration."""

    scheduler: str = "draconis"
    workers: int = calibration.DEFAULT_WORKERS
    executors_per_worker: int = calibration.DEFAULT_EXECUTORS_PER_WORKER
    racks: int = 1
    seed: int = 0
    # Draconis
    policy: Optional[Policy] = None
    queue_capacity: int = 16_384
    record_queue_delays: bool = False
    retrieve_mode: str = "conditional"  # or "delayed" (§4.5 ablation)
    queues_in_stages: bool = False  # Tofino 2 layout, no ladder recirc (§8.7)
    park_pulls: bool = False  # park empty-queue pulls instead of no-op reply
    pull_ttl_ns: int = DEFAULT_PULL_TTL_NS  # parked-pull expiry (crash GC)
    # control plane (repro.ctrl, draconis only)
    controller: bool = False  # heartbeat-lease membership + reclaim
    #: >=2 replaces the single controller with a ControllerGroup
    #: (repro.ctrl.replication): switch-arbitrated leader election,
    #: term fencing, and leader->follower state sync
    controller_replicas: int = 1
    lease_ns: int = DEFAULT_LEASE_NS
    heartbeat_interval_ns: Optional[int] = None  # None = ExecutorConfig default
    checkpoint_interval_ns: Optional[int] = None  # None = no checkpointing
    journal_capacity: int = DEFAULT_JOURNAL_CAPACITY
    degradation: Optional[DegradationPolicy] = None  # None = accept-or-bounce
    # R2P2
    jbsq_k: int = 3
    # RackSched intra-node policy: cFCFS (default, light-tailed) or
    # Processor Sharing with preemption (heavy-tailed, §2.2)
    racksched_processor_sharing: bool = False
    # Sparrow
    sparrow_schedulers: int = 1
    # executors / clients
    poll_interval_ns: int = calibration.POLL_INTERVAL_NS
    record_pull_rtts: bool = False
    exec_rsrc_for_node: Optional[Callable[[int], int]] = None
    locality_cost: Optional[LocalityCostModel] = None
    timeout_factor: Optional[float] = None
    tasks_per_packet: Optional[int] = None  # None = codec max (32)
    clients: int = 1
    # switch
    recirc_pps: int = calibration.RECIRC_PPS
    recirc_queue_packets: int = calibration.RECIRC_QUEUE_PACKETS
    # observability: attach this telemetry bus to the collector, switch,
    # links and executors (None = uninstrumented, the zero-cost default)
    obs: Optional[TelemetryBus] = None

    @property
    def total_executors(self) -> int:
        return self.workers * self.executors_per_worker

    def worker_specs(self) -> List[WorkerSpec]:
        specs = []
        for node_id in range(self.workers):
            rack_id = node_id * self.racks // self.workers
            resources = (
                self.exec_rsrc_for_node(node_id)
                if self.exec_rsrc_for_node
                else 0
            )
            specs.append(
                WorkerSpec(
                    node_id=node_id,
                    rack_id=rack_id,
                    executors=self.executors_per_worker,
                    resources=resources,
                )
            )
        return specs

    def node_racks(self) -> Dict[int, int]:
        return {s.node_id: s.rack_id for s in self.worker_specs()}


@dataclass
class ClusterHandles:
    """Live objects of a built cluster."""

    sim: Simulator
    topology: StarTopology
    collector: MetricsCollector
    scheduler_address: Address
    clients: List[Client] = field(default_factory=list)
    workers: List[object] = field(default_factory=list)
    switch: Optional[ProgrammableSwitch] = None
    draconis: Optional[DraconisProgram] = None
    server: Optional[ServerScheduler] = None
    sparrows: List[SparrowScheduler] = field(default_factory=list)
    r2p2: Optional[R2P2Program] = None
    racksched: Optional[RackSchedProgram] = None
    controller: Optional[Controller] = None
    ctrl_group: Optional[ControllerGroup] = None
    checkpoints: Optional[CheckpointManager] = None


@dataclass
class RunResult:
    """Summary of one run, the unit every figure is assembled from."""

    config: ClusterConfig
    duration_ns: int
    tasks_submitted: int
    tasks_completed: int
    tasks_unfinished: int
    resubmissions: int
    bounces: int
    scheduling: LatencySummary
    end_to_end: LatencySummary
    throughput_tps: float
    recirculation_fraction: float
    recirc_dropped: int
    utilization: float
    scheduling_delays_ns: List[int] = field(default_factory=list)
    end_to_end_ns: List[int] = field(default_factory=list)
    queue_delays: List[Tuple[int, int]] = field(default_factory=list)
    placements: Dict[str, float] = field(default_factory=dict)
    delays_by_priority: Dict[int, List[int]] = field(default_factory=dict)
    network: Optional[NetworkFaultSummary] = None

    @property
    def drop_fraction(self) -> float:
        if self.tasks_submitted == 0:
            return 0.0
        return self.tasks_unfinished / self.tasks_submitted


def build_cluster(
    config: ClusterConfig,
    workloads: List[Iterable[SubmitEvent]],
    rngs: Optional[RngStreams] = None,
) -> ClusterHandles:
    """Stand up the configured scheduler plus workers and clients.

    ``workloads``: one event stream per client (round-robin split done by
    the caller or :func:`run_workload`).
    """
    if config.scheduler not in SCHEDULERS:
        raise ConfigurationError(
            f"unknown scheduler {config.scheduler!r}; one of {SCHEDULERS}"
        )
    if len(workloads) != config.clients:
        raise ConfigurationError(
            f"need {config.clients} workload streams, got {len(workloads)}"
        )
    if config.scheduler != "draconis" and (
        config.controller
        or config.checkpoint_interval_ns is not None
        or config.degradation is not None
    ):
        raise ConfigurationError(
            "controller/checkpointing/degradation (repro.ctrl) only apply "
            f"to the draconis scheduler, not {config.scheduler!r}"
        )
    rngs = rngs or RngStreams(config.seed)
    sim = Simulator()
    collector = MetricsCollector()
    handles = ClusterHandles(
        sim=sim,
        topology=None,  # type: ignore[arg-type]
        collector=collector,
        scheduler_address=None,  # type: ignore[arg-type]
    )

    if config.scheduler == "draconis":
        program = DraconisProgram(
            policy=config.policy,
            queue_capacity=config.queue_capacity,
            record_queue_delays=config.record_queue_delays,
            retrieve_mode=config.retrieve_mode,
            queues_in_stages=config.queues_in_stages,
            park_pulls=config.park_pulls,
            pull_ttl_ns=config.pull_ttl_ns,
            degradation=config.degradation,
        )
        switch = ProgrammableSwitch(
            sim,
            program,
            recirc_pps=config.recirc_pps,
            recirc_queue_packets=config.recirc_queue_packets,
            recirc_latency_ns=calibration.RECIRC_LATENCY_NS,
        )
        topology = StarTopology(sim, switch)
        handles.switch, handles.draconis = switch, program
        handles.scheduler_address = switch.service_address
        controller_address = None
        if config.checkpoint_interval_ns is not None:
            handles.checkpoints = CheckpointManager(
                sim,
                switch,
                interval_ns=config.checkpoint_interval_ns,
                journal_capacity=config.journal_capacity,
                obs=config.obs,
            )
        if config.controller:
            if config.controller_replicas >= 2:
                handles.ctrl_group = ControllerGroup(
                    sim,
                    topology,
                    switch,
                    program=program,
                    replicas=config.controller_replicas,
                    lease_ns=config.lease_ns,
                    obs=config.obs,
                    checkpoints=handles.checkpoints,
                )
                # Executors broadcast heartbeats to every replica so
                # followers keep warm lease tables for takeover.
                controller_address = tuple(handles.ctrl_group.addresses())
            else:
                handles.controller = Controller(
                    sim,
                    topology,
                    lease_ns=config.lease_ns,
                    program=program,
                    switch=switch,
                    obs=config.obs,
                )
                controller_address = handles.controller.address
        _build_pull_workers(
            config, sim, topology, collector, handles,
            controller=controller_address,
        )
    elif config.scheduler in ("draconis-dpdk", "draconis-socket"):
        switch = BaseSwitch(sim)
        topology = StarTopology(sim, switch)
        profile = (
            DPDK_SERVER if config.scheduler == "draconis-dpdk" else SOCKET_SERVER
        )
        server = ServerScheduler(
            sim, topology, profile=profile, queue_capacity=config.queue_capacity
        )
        handles.server = server
        handles.scheduler_address = server.address
        _build_pull_workers(config, sim, topology, collector, handles)
    elif config.scheduler == "r2p2":
        program = None  # placed after workers exist (needs addresses)
        switch = ProgrammableSwitch(
            sim,
            _DeferredProgram(),
            recirc_pps=config.recirc_pps,
            recirc_queue_packets=config.recirc_queue_packets,
            recirc_latency_ns=calibration.RECIRC_LATENCY_NS,
        )
        topology = StarTopology(sim, switch)
        handles.switch = switch
        handles.scheduler_address = switch.service_address
        executor_addresses: List[Address] = []
        for spec in config.worker_specs():
            worker = PushWorker(
                sim,
                topology,
                spec,
                collector,
                scheduler=handles.scheduler_address,
                executor_id_base=spec.node_id * config.executors_per_worker,
                per_executor_queues=True,
            )
            handles.workers.append(worker)
            executor_addresses.extend(
                worker.executor_address(i) for i in range(spec.executors)
            )
        program = R2P2Program(
            executor_addresses,
            bound_k=config.jbsq_k,
            rng=rngs.stream("r2p2-sampling"),
        )
        switch.program = program
        program.attach(switch)
        handles.r2p2 = program
    elif config.scheduler == "racksched":
        switch = ProgrammableSwitch(
            sim,
            _DeferredProgram(),
            recirc_pps=config.recirc_pps,
            recirc_queue_packets=config.recirc_queue_packets,
            recirc_latency_ns=calibration.RECIRC_LATENCY_NS,
        )
        topology = StarTopology(sim, switch)
        handles.switch = switch
        handles.scheduler_address = switch.service_address
        monitor_addresses: List[Address] = []
        executors_per_node: List[int] = []
        for spec in config.worker_specs():
            worker = PushWorker(
                sim,
                topology,
                spec,
                collector,
                scheduler=handles.scheduler_address,
                executor_id_base=spec.node_id * config.executors_per_worker,
                per_executor_queues=False,
                intra_node_overhead_ns=calibration.INTRA_NODE_OVERHEAD_NS,
                intra_node_overhead_sigma=calibration.INTRA_NODE_OVERHEAD_SIGMA,
                processor_sharing=config.racksched_processor_sharing,
            )
            handles.workers.append(worker)
            monitor_addresses.append(worker.monitor_address())
            executors_per_node.append(spec.executors)
        program = RackSchedProgram(
            monitor_addresses,
            executors_per_node,
            rng=rngs.stream("racksched-sampling"),
        )
        switch.program = program
        program.attach(switch)
        handles.racksched = program
    elif config.scheduler == "sparrow":
        switch = BaseSwitch(sim)
        topology = StarTopology(sim, switch)
        monitors: List[Tuple[Address, Address]] = []
        for spec in config.worker_specs():
            worker = PushWorker(
                sim,
                topology,
                spec,
                collector,
                scheduler=Address("sparrow0", 9000),
                executor_id_base=spec.node_id * config.executors_per_worker,
                per_executor_queues=False,
                completion_direct=True,
            )
            handles.workers.append(worker)
            monitors.append((worker.monitor_address(), worker.probe_address()))
        for i in range(config.sparrow_schedulers):
            handles.sparrows.append(
                SparrowScheduler(
                    sim,
                    topology,
                    monitors,
                    name=f"sparrow{i}",
                    probes_per_task=calibration.SPARROW_PROBES_PER_TASK,
                    per_message_ns=calibration.SPARROW_PER_MESSAGE_NS,
                    cores=calibration.SPARROW_CORES,
                    task_overhead_ns=calibration.SPARROW_TASK_OVERHEAD_NS,
                    task_overhead_jitter=calibration.SPARROW_TASK_OVERHEAD_JITTER,
                    rng=rngs.stream(f"sparrow-{i}"),
                )
            )
        handles.scheduler_address = handles.sparrows[0].address

    handles.topology = topology

    client_config = ClientConfig(
        bounce_retry_ns=calibration.CLIENT_BOUNCE_RETRY_NS,
        timeout_factor=config.timeout_factor,
    )
    if config.tasks_per_packet is not None:
        client_config.max_tasks_per_packet = config.tasks_per_packet
    for i, workload in enumerate(workloads):
        host = topology.add_host(f"client{i}")
        if config.scheduler == "sparrow":
            scheduler_addr = handles.sparrows[
                i % len(handles.sparrows)
            ].address
        else:
            scheduler_addr = handles.scheduler_address
        handles.clients.append(
            Client(
                sim,
                host,
                uid=i,
                scheduler=scheduler_addr,
                workload=workload,
                collector=collector,
                config=client_config,
            )
        )
    if config.obs is not None:
        attach_obs(config.obs, handles)
    return handles


def attach_obs(bus: TelemetryBus, handles: ClusterHandles) -> None:
    """Point every instrumented component of a built cluster at ``bus``.

    Idempotent; safe to call again after a switch failover installs a
    fresh program (programs read the bus through ``switch.obs``).
    """
    handles.collector.bind_obs(bus)
    if handles.switch is not None:
        handles.switch.obs = bus
    for worker in handles.workers:
        if isinstance(worker, Worker):
            worker.attach_obs(bus)
    for link in handles.topology.links():
        link.obs = bus


class _DeferredProgram:
    """Placeholder while worker addresses are being created."""

    service_port = 9000

    def attach(self, switch) -> None:
        pass

    def wants(self, packet) -> bool:
        return packet.dst.port == self.service_port

    def process(self, ctx, packet):
        raise ConfigurationError("switch program was never installed")


def _build_pull_workers(
    config: ClusterConfig,
    sim: Simulator,
    topology: StarTopology,
    collector: MetricsCollector,
    handles: ClusterHandles,
    controller: object = None,  # Address | Sequence[Address] | None
) -> None:
    exec_config = ExecutorConfig(
        poll_interval_ns=config.poll_interval_ns,
        locality=config.locality_cost,
        record_pull_rtts=config.record_pull_rtts,
    )
    if config.heartbeat_interval_ns is not None:
        exec_config.heartbeat_interval_ns = config.heartbeat_interval_ns
    rngs = RngStreams(config.seed)
    for spec in config.worker_specs():
        handles.workers.append(
            Worker(
                sim,
                topology,
                spec,
                scheduler=handles.scheduler_address,
                collector=collector,
                config=replace(exec_config, exec_rsrc=spec.resources),
                executor_id_base=spec.node_id * config.executors_per_worker,
                rng=rngs.stream(f"worker-{spec.node_id}"),
                controller=controller,
            )
        )


def split_round_robin(
    events: Iterable[SubmitEvent], ways: int
) -> List[List[SubmitEvent]]:
    """Split one event stream across ``ways`` clients."""
    streams: List[List[SubmitEvent]] = [[] for _ in range(ways)]
    for i, event in enumerate(events):
        streams[i % ways].append(event)
    return streams


def run_workload(
    config: ClusterConfig,
    workload_factory: Callable[[RngStreams], Iterator[SubmitEvent]],
    duration_ns: int,
    warmup_ns: int = 0,
    drain_ns: int = ms(5),
    mean_duration_ns: Optional[float] = None,
) -> RunResult:
    """Build, run, and summarize one configuration."""
    rngs = RngStreams(config.seed)
    events = list(workload_factory(rngs))
    workloads = split_round_robin(events, config.clients)
    handles = build_cluster(config, workloads, rngs=rngs)
    handles.sim.run(until=duration_ns + drain_ns)

    collector = handles.collector
    delays = collector.scheduling_delays(since=warmup_ns)
    e2e = collector.end_to_end_latencies(since=warmup_ns)
    throughput = collector.throughput_tps(warmup_ns, duration_ns + drain_ns)
    recirc_fraction = (
        handles.switch.stats.recirculation_fraction() if handles.switch else 0.0
    )
    recirc_dropped = handles.switch.stats.recirc_dropped if handles.switch else 0

    busy = 0
    for worker in handles.workers:
        if isinstance(worker, Worker):
            busy += sum(e.stats.busy_time_ns for e in worker.executors)
        elif isinstance(worker, PushWorker):
            busy += worker.busy_time_ns
    elapsed = handles.sim.now
    utilization = (
        busy / (elapsed * config.total_executors) if elapsed else 0.0
    )

    return RunResult(
        config=config,
        duration_ns=duration_ns,
        tasks_submitted=collector.submitted_count(),
        tasks_completed=collector.completed_count(),
        tasks_unfinished=collector.unfinished_count(),
        resubmissions=collector.resubmissions,
        bounces=collector.bounce_retries,
        scheduling=summarize_ns(delays),
        end_to_end=summarize_ns(e2e),
        throughput_tps=throughput,
        recirculation_fraction=recirc_fraction,
        recirc_dropped=recirc_dropped,
        utilization=utilization,
        scheduling_delays_ns=delays,
        end_to_end_ns=e2e,
        queue_delays=(
            list(handles.draconis.queue_delays) if handles.draconis else []
        ),
        placements=collector.placement_fractions(),
        delays_by_priority=collector.delays_by_priority(since=warmup_ns),
        network=summarize_links(handles.topology.links()),
    )
