"""Figure 6: p99 scheduling delay across the synthetic workload suite
(§8.1): fixed 100/250/500 µs, bimodal, trimodal, exponential.

Paper result: Draconis holds 4.7–20 µs p99 across all six workloads;
R2P2's tail equals the task service time from 30–40 % utilization
onwards; RackSched sits ~3× above Draconis and deteriorates at high load;
Draconis-DPDK-Server ~20× above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ClusterConfig, run_workload
from repro.metrics.summary import PercentileSummary
from repro.sim.core import ms
from repro.workloads import (
    DurationSampler,
    bimodal,
    exponential,
    fixed,
    open_loop,
    rate_for_utilization,
    trimodal,
)

def _workloads() -> Dict[str, DurationSampler]:
    # Built lazily so each call gets fresh sampler closures.
    return {
        "100us": fixed(100),
        "250us": fixed(250),
        "500us": fixed(500),
        "bimodal": bimodal(),
        "trimodal": trimodal(),
        "exponential": exponential(250),
    }


SYSTEMS = (
    ("draconis", dict(scheduler="draconis")),
    ("racksched", dict(scheduler="racksched")),
    ("r2p2-3", dict(scheduler="r2p2", jbsq_k=3)),
    ("draconis-dpdk", dict(scheduler="draconis-dpdk")),
)

DEFAULT_LOADS = (0.3, 0.5, 0.7, 0.9)


@dataclass
class Fig6Row:
    workload: str
    system: str
    utilization: float
    p50_us: float
    p99_us: float
    p999_us: float = float("nan")


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ns: int = ms(60),
    workload_names: Optional[Sequence[str]] = None,
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Fig6Row]:
    rows: List[Fig6Row] = []
    warmup = duration_ns // 8
    for name, sampler in _workloads().items():
        if workload_names is not None and name not in workload_names:
            continue
        for label, overrides in SYSTEMS:
            if systems is not None and label not in systems:
                continue
            for load in loads:
                config = ClusterConfig(seed=seed, **overrides)
                rate = rate_for_utilization(
                    load, config.total_executors, sampler.mean_ns
                )

                def factory(rngs, _rate=rate, _sampler=sampler):
                    return open_loop(
                        rngs.stream("arrivals"), _rate, _sampler, duration_ns
                    )

                result = run_workload(
                    config, factory, duration_ns=duration_ns, warmup_ns=warmup
                )
                tail = PercentileSummary.from_ns(result.scheduling_delays_ns)
                rows.append(
                    Fig6Row(
                        workload=name,
                        system=label,
                        utilization=load,
                        p50_us=tail.p50_us,
                        p99_us=tail.p99_us,
                        p999_us=tail.p999_us,
                    )
                )
    return rows


def print_table(rows: List[Fig6Row]) -> None:
    print("Figure 6 — p99 scheduling delay, synthetic workload suite")
    current = None
    for row in rows:
        if row.workload != current:
            current = row.workload
            print(f"\n[{current}]")
            print(f"{'system':>16} {'util':>5} {'p50':>10} {'p99':>10}")
        print(
            f"{row.system:>16} {row.utilization:>5.2f} "
            f"{row.p50_us:>9.1f}u {row.p99_us:>9.1f}u"
        )


def charts(rows: List[Fig6Row]) -> str:
    """One log-y panel per workload, like the paper's 6-panel figure."""
    from repro.viz import line_chart

    panels = []
    workloads = sorted({row.workload for row in rows})
    for workload in workloads:
        series: Dict[str, List] = {}
        for row in rows:
            if row.workload != workload:
                continue
            series.setdefault(row.system, []).append(
                (row.utilization, row.p99_us)
            )
        panels.append(
            line_chart(
                series,
                width=48,
                height=12,
                log_y=True,
                title=f"[{workload}] p99 vs utilization (log y)",
            )
        )
    return "\n\n".join(panels)


if __name__ == "__main__":
    table = run()
    print_table(table)
    print()
    print(charts(table))
