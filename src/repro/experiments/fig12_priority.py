"""Figure 12: queueing delays across priority levels (§8.6).

Setup (paper): accelerated Google trace with 5 ms mean task time,
oversampled to overload the cluster so queueing builds; 12 Google
priority levels mapped three-to-one onto Draconis' 4 levels, giving a
1.2 / 1.7 / 64.6 / 32.2 % mix. Result: median queueing delays of
1.4 / 2.9 / 13.3 / 53.5 ms for levels 1–4, vs 39.5 ms for
priority-unaware FCFS — strict separation, highest priority queued only
when no executor is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.policies import PriorityPolicy
from repro.experiments.common import ClusterConfig, run_workload
from repro.metrics.summary import percentile
from repro.sim.core import ms, us
from repro.workloads import GoogleTraceConfig, google_like


@dataclass
class Fig12Row:
    policy: str
    priority: int  # 0 = the FCFS (priority-unaware) run
    count: int
    queueing_p50_us: float
    queueing_p99_us: float


def run(
    duration_ns: int = ms(400),
    mean_task_ns: int = ms(5),
    overload: float = 1.3,
    levels: int = 4,
    workers: int = 10,
    executors_per_worker: int = 16,
    seed: int = 0,
    include_fcfs: bool = True,
) -> List[Fig12Row]:
    """Queueing delays per level under overload.

    ``overload`` scales the arrival rate above cluster capacity so queues
    build, as the paper's oversampling does.
    """
    rows: List[Fig12Row] = []
    executors = workers * executors_per_worker
    rate = overload * executors / (mean_task_ns / 1e9)
    trace_config = GoogleTraceConfig(
        mean_duration_ns=mean_task_ns,
        target_rate_tps=rate,
        horizon_ns=duration_ns,
        with_priorities=True,
        draconis_levels=levels,
    )

    configs = [("priority", PriorityPolicy(levels=levels))]
    if include_fcfs:
        configs.append(("fcfs", None))

    for label, policy in configs:
        config = ClusterConfig(
            scheduler="draconis",
            workers=workers,
            executors_per_worker=executors_per_worker,
            seed=seed,
            policy=policy,
            queue_capacity=1 << 16,
            record_queue_delays=True,
        )

        def factory(rngs):
            return google_like(rngs.stream("google-5ms"), trace_config)

        result = run_workload(
            config,
            factory,
            duration_ns=duration_ns,
            warmup_ns=duration_ns // 8,
            drain_ns=ms(50),
        )
        if label == "priority":
            by_level: Dict[int, List[int]] = {}
            for queue_index, delay in result.queue_delays:
                by_level.setdefault(queue_index + 1, []).append(delay)
            for level in sorted(by_level):
                delays = by_level[level]
                rows.append(
                    Fig12Row(
                        policy=label,
                        priority=level,
                        count=len(delays),
                        queueing_p50_us=percentile(delays, 50) / 1e3,
                        queueing_p99_us=percentile(delays, 99) / 1e3,
                    )
                )
        else:
            delays = [delay for _q, delay in result.queue_delays]
            rows.append(
                Fig12Row(
                    policy=label,
                    priority=0,
                    count=len(delays),
                    queueing_p50_us=percentile(delays, 50) / 1e3,
                    queueing_p99_us=percentile(delays, 99) / 1e3,
                )
            )
    return rows


def print_table(rows: List[Fig12Row]) -> None:
    print("Figure 12 — queueing delay by priority level (overloaded trace)")
    print(f"{'policy':>10} {'level':>6} {'n':>8} {'p50':>12} {'p99':>12}")
    for row in rows:
        level = str(row.priority) if row.priority else "-"
        print(
            f"{row.policy:>10} {level:>6} {row.count:>8} "
            f"{row.queueing_p50_us / 1e3:>9.2f}ms "
            f"{row.queueing_p99_us / 1e3:>9.2f}ms"
        )


if __name__ == "__main__":
    print_table(run())
