"""Calibration constants mapping the simulation onto the paper's testbed.

The reproduction targets *shape* (who wins, by what rough factor, where
crossovers fall), not absolute numbers — our substrate is a discrete-event
simulator, not the authors' Tofino cluster (see DESIGN.md). The constants
here anchor the simulation to figures the paper itself reports:

===========================  =============================================
Constant                      Anchor in the paper
===========================  =============================================
``LINK_*``                    100 Gbps NICs, ToR star (§8 "Testbed"), RTT
                              of "a few microseconds" (§3.1)
``SWITCH_PIPELINE_NS``        sub-µs switch traversal (Fig. 13 discussion)
``RECIRC_*``                  recirculation bandwidth "far more limited"
                              than packet bandwidth (§8.3); calibrated so
                              R2P2-1 saturates it at high load (Fig. 7)
``SOCKET/DPDK per-packet``    socket schedulers cap at ~160 k tps, DPDK at
                              ~1.1 M tps (§8.1, §8.2)
``SPARROW_*``                 ~500 k tps single-scheduler Sparrow (§8.2),
                              25×-faster-than-Java C++ reimplementation
``INTRA_NODE_OVERHEAD_NS``    RackSched's 3–4 µs intra-node overhead (§8.1)
``POLL_INTERVAL_NS``          "sends another task request periodically"
                              (§3.1); chosen so an idle 160-executor
                              cluster polls every ~150 ns in aggregate
``CLIENT_TIMEOUT_FACTOR``     "we have set the client timeout to 2× the
                              task execution time" (§8.3)
===========================  =============================================
"""

from repro.sim.core import us

# -- network -----------------------------------------------------------------
LINK_BANDWIDTH_BPS = 100 * 10**9
LINK_PROPAGATION_NS = 500

# -- switch --------------------------------------------------------------------
SWITCH_PIPELINE_NS = 600
#: packets/s through the recirculation loop; a dedicated loopback port's
#: small-packet rate, far below the ASIC's 4.7 Bpps line rate (§8.3)
RECIRC_PPS = 3_000_000
RECIRC_QUEUE_PACKETS = 16
RECIRC_LATENCY_NS = 1_000

# -- server-based schedulers ---------------------------------------------------
SOCKET_PER_PACKET_NS = 3_100
DPDK_PER_PACKET_NS = 450
SERVER_RX_QUEUE_PACKETS = 4096

# -- Sparrow --------------------------------------------------------------------
SPARROW_PER_MESSAGE_NS = 5_000
SPARROW_CORES = 8
SPARROW_PROBES_PER_TASK = 2
#: per-task software latency of the reference implementation. The paper's
#: C++ Sparrow shows ~0.9–1 ms p99 scheduling delay even at low load
#: (Fig. 5a; 1.7× above Draconis-Socket-Server) while sustaining ~500 k
#: tps (Fig. 5b) — i.e. the overhead is pipelined, not serial CPU. We
#: model it as a non-blocking per-task dispatch latency with ±30 % jitter.
SPARROW_TASK_OVERHEAD_NS = 700_000
SPARROW_TASK_OVERHEAD_JITTER = 0.3

# -- RackSched -------------------------------------------------------------------
INTRA_NODE_OVERHEAD_NS = us(3.5)
#: lognormal shape of the intra-node overhead (software jitter tail)
INTRA_NODE_OVERHEAD_SIGMA = 0.45

# -- executors / clients -----------------------------------------------------------
POLL_INTERVAL_NS = us(25)
CLIENT_TIMEOUT_FACTOR = 2.0
CLIENT_BOUNCE_RETRY_NS = us(50)

# -- default cluster (the paper's testbed) -----------------------------------------
DEFAULT_WORKERS = 10
DEFAULT_EXECUTORS_PER_WORKER = 16
