"""Warm-standby recovery experiment: checkpointed failover vs §3.3 baseline.

The paper's failover story (§3.3) is *lossy*: the standby switch comes up
with empty registers, queued-but-unassigned tasks vanish, and clients
repair the loss by timeout-resubmission. The ``repro.ctrl`` subsystem
adds a warm standby — periodic register checkpoints plus a bounded delta
journal replayed into the standby before it sees its first packet — and
this experiment quantifies the difference:

* **warm arm** (checkpointing on, client timeouts *disabled*): every
  queued task must survive the failover on its own. Zero tasks lost and
  zero resubmissions proves recovery does not lean on the client timeout
  path at all.
* **baseline arm** (empty standby, client timeouts on): the paper's
  story. Tasks queued at the failover instant are lost from the switch
  and come back only via resubmission — counted and reported.

For each checkpoint interval the run reports the modelled recovery time
(detection + journal/checkpoint replay, see
:class:`repro.ctrl.RecoveryReport`), which is bounded by
``detection_ns + replay_ns_per_entry × (checkpoint entries + journal
ops)`` — i.e. by the checkpoint interval via the journal length.

Usage::

    python -m repro.experiments.recovery [--seeds N] [--out summary.json]
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.scheduler import DraconisProgram
from repro.experiments import common
from repro.experiments.parallel_runner import add_jobs_argument, parallel_map
from repro.faults import FaultInjector, FaultPlan, SwitchFailover
from repro.sim.core import ms
from repro.sim.rng import RngStreams
from repro.workloads import exponential, open_loop, rate_for_utilization

#: higher than the chaos experiment: the point is to have a deep queue
#: standing at the failover instant, so loss (or its absence) is visible
DEFAULT_UTILIZATION = 0.55
#: baseline arm resubmit timeout (the §3.3 repair path)
BASELINE_TIMEOUT_FACTOR = 4.0
#: checkpoint intervals swept by :func:`run` (None = empty-standby baseline)
DEFAULT_INTERVALS_NS = (None, ms(4), ms(2), ms(1), int(ms(1) // 2))


@dataclass
class RecoveryResult:
    """One (seed, checkpoint interval) failover run."""

    seed: int
    #: None = empty-standby baseline (paper §3.3), else warm standby
    checkpoint_interval_ns: Optional[int]
    failover_at_ns: int
    tasks_submitted: int
    tasks_completed: int
    #: switch-queued + parked entries captured just before the failover —
    #: the population at risk of being lost with an empty standby
    queued_at_failover: int
    #: submitted tasks that never completed, even after the drain window
    tasks_lost: int
    #: client timeout resubmissions (must be 0 for the warm arm to count
    #: as recovered *without* leaning on §3.3 client repair)
    resubmissions: int
    #: modelled standby recovery time (0 for the baseline: nothing replayed)
    recovery_ns: int
    checkpoint_age_ns: int = 0
    entries_restored: int = 0
    parked_restored: int = 0
    journal_ops_replayed: int = 0
    journal_overflows: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def warm(self) -> bool:
        return self.checkpoint_interval_ns is not None

    @property
    def ok(self) -> bool:
        if not self.warm:
            return True  # the baseline is *expected* to lose/resubmit
        return self.tasks_lost == 0 and self.resubmissions == 0

    def arm(self) -> str:
        if not self.warm:
            return "baseline"
        return f"ckpt={self.checkpoint_interval_ns / 1e6:g}ms"

    def row(self) -> str:
        verdict = "OK" if self.ok else "LOST TASKS"
        recovery = (
            "-" if not self.warm else f"{self.recovery_ns / 1e3:7.1f}us"
        )
        return (
            f"seed={self.seed:<3} {self.arm():>10}  "
            f"tasks={self.tasks_completed}/{self.tasks_submitted}  "
            f"at_risk={self.queued_at_failover:<4} "
            f"lost={self.tasks_lost:<4} resub={self.resubmissions:<4} "
            f"restored={self.entries_restored}+{self.parked_restored}p "
            f"journal={self.journal_ops_replayed:<4} "
            f"recovery={recovery}  {verdict}"
        )


def run_recovery(
    seed: int,
    checkpoint_interval_ns: Optional[int] = ms(1),
    duration_ns: int = ms(24),
    drain_ns: int = ms(24),
    failover_at_ns: Optional[int] = None,
    workers: int = 3,
    executors_per_worker: int = 4,
    utilization: float = DEFAULT_UTILIZATION,
    obs=None,
) -> RecoveryResult:
    """Run one workload through a single mid-run switch failover.

    ``checkpoint_interval_ns=None`` runs the paper's empty-standby
    baseline (client timeouts enabled, §3.3 repair); any other value runs
    the warm-standby arm with client timeouts *disabled*, so completion of
    every task can only come from checkpoint+journal replay plus the
    lease controller's reclaim of parked pulls.
    """
    warm = checkpoint_interval_ns is not None
    if failover_at_ns is None:
        failover_at_ns = duration_ns // 2
    config = common.ClusterConfig(
        scheduler="draconis",
        workers=workers,
        executors_per_worker=executors_per_worker,
        seed=seed,
        queue_capacity=4096,
        timeout_factor=None if warm else BASELINE_TIMEOUT_FACTOR,
        park_pulls=True,
        controller=warm,
        checkpoint_interval_ns=checkpoint_interval_ns,
        obs=obs,
    )
    rngs = RngStreams(seed)
    sampler = exponential(150)
    rate = rate_for_utilization(
        utilization, config.total_executors, sampler.mean_ns
    )
    events = list(
        open_loop(rngs.stream("recovery-arrivals"), rate, sampler, duration_ns)
    )
    handles = common.build_cluster(config, [events], rngs=rngs)
    program = handles.switch.program

    def standby_program() -> DraconisProgram:
        # Always *built* empty (a standby switch has no state of its own);
        # the warm arm's CheckpointManager install hook replays the last
        # checkpoint + journal into it before it sees a packet.
        return DraconisProgram(
            policy=config.policy,
            queue_capacity=config.queue_capacity,
            retrieve_mode=config.retrieve_mode,
            queues_in_stages=config.queues_in_stages,
            park_pulls=config.park_pulls,
            pull_ttl_ns=config.pull_ttl_ns,
        )

    plan = FaultPlan([SwitchFailover(at_ns=failover_at_ns)])
    FaultInjector(
        handles.sim,
        plan,
        handles.topology,
        workers=handles.workers,
        switch=handles.switch,
        program_factory=standby_program,
        rng=rngs.stream("recovery-injector"),
    ).arm()

    at_risk = {"count": 0}

    def capture_at_risk() -> None:
        queued = sum(q.approx_occupancy() for q in program.queues)
        at_risk["count"] = queued + len(program._parked_pulls)

    handles.sim.call_at(max(0, failover_at_ns - 1), capture_at_risk)

    handles.sim.run(until=duration_ns + drain_ns)

    collector = handles.collector
    submitted = collector.submitted_count()
    completed = collector.completed_count()
    violations: List[str] = []
    if warm and collector.resubmissions:
        violations.append(
            f"warm arm recorded {collector.resubmissions} client "
            f"resubmissions — recovery leaned on the §3.3 timeout path"
        )
    report = handles.checkpoints.last_report if handles.checkpoints else None
    if warm and report is None:
        violations.append("failover fired but no recovery report was produced")
    return RecoveryResult(
        seed=seed,
        checkpoint_interval_ns=checkpoint_interval_ns,
        failover_at_ns=failover_at_ns,
        tasks_submitted=submitted,
        tasks_completed=completed,
        queued_at_failover=at_risk["count"],
        tasks_lost=submitted - completed,
        resubmissions=collector.resubmissions,
        recovery_ns=report.recovery_ns if report else 0,
        checkpoint_age_ns=report.checkpoint_age_ns if report else 0,
        entries_restored=report.entries_restored if report else 0,
        parked_restored=report.parked_restored if report else 0,
        journal_ops_replayed=report.journal_ops_replayed if report else 0,
        journal_overflows=report.journal_overflows if report else 0,
        violations=violations,
    )


def _recovery_cell(item) -> RecoveryResult:
    """One (seed, interval) cell — module-level so the pool can pickle it."""
    seed, interval, kwargs = item
    return run_recovery(seed, checkpoint_interval_ns=interval, **kwargs)


def run(
    seeds: Sequence[int] = (0, 1, 2),
    intervals_ns: Sequence[Optional[int]] = DEFAULT_INTERVALS_NS,
    jobs: Optional[int] = None,
    **kwargs,
) -> List[RecoveryResult]:
    """The acceptance sweep: baseline + each checkpoint interval × seeds.

    Cells fork across cores (see :mod:`repro.experiments.parallel_runner`);
    results are identical to the serial sweep in content and order. An
    attached ``obs`` bus forces the serial path.
    """
    cells = [
        (seed, interval, kwargs)
        for interval in intervals_ns
        for seed in seeds
    ]
    return parallel_map(
        _recovery_cell, cells, jobs=jobs, serial=kwargs.get("obs") is not None
    )


def summarize(results: Sequence[RecoveryResult]) -> Dict:
    """JSON-ready summary (the CI chaos job uploads this as an artifact)."""
    warm = [r for r in results if r.warm]
    baseline = [r for r in results if not r.warm]
    return {
        "runs": [asdict(r) for r in results],
        "warm_runs": len(warm),
        "warm_tasks_lost": sum(r.tasks_lost for r in warm),
        "warm_resubmissions": sum(r.resubmissions for r in warm),
        "warm_max_recovery_ns": max((r.recovery_ns for r in warm), default=0),
        "baseline_tasks_lost": sum(r.tasks_lost for r in baseline),
        "baseline_resubmissions": sum(r.resubmissions for r in baseline),
        "baseline_at_risk": sum(r.queued_at_failover for r in baseline),
        "ok": all(r.ok and not r.violations for r in results),
    }


def print_table(results: Sequence[RecoveryResult]) -> None:
    for result in results:
        print(result.row())
        for violation in result.violations:
            print(f"    ! {violation}")
    summary = summarize(results)
    print(
        f"\nwarm arms: {summary['warm_tasks_lost']} tasks lost, "
        f"{summary['warm_resubmissions']} resubmissions, "
        f"max modelled recovery "
        f"{summary['warm_max_recovery_ns'] / 1e3:.1f}us"
    )
    print(
        f"baseline:  {summary['baseline_tasks_lost']} tasks lost outright, "
        f"{summary['baseline_resubmissions']} resubmissions repairing "
        f"{summary['baseline_at_risk']} at-risk tasks"
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3, help="seeds per arm")
    parser.add_argument("--duration-ms", type=float, default=24.0)
    parser.add_argument("--drain-ms", type=float, default=24.0)
    parser.add_argument(
        "--out", help="write the JSON summary to this path (CI artifact)"
    )
    add_jobs_argument(parser)
    args = parser.parse_args(argv)
    results = run(
        seeds=range(args.seeds),
        duration_ns=int(ms(args.duration_ms)),
        drain_ns=int(ms(args.drain_ms)),
        jobs=args.jobs,
    )
    print_table(results)
    summary = summarize(results)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"summary written to {args.out}")
    if not summary["ok"]:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
