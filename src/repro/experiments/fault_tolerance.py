"""Chaos experiment: the paper's §3.3 fault claims, tested end to end.

The paper argues the pull model makes failure handling nearly free: dead
executors simply stop pulling, a failed switch is repaired entirely by
client timeout-resubmission, and lost packets surface as client timeouts.
This experiment runs a Draconis cluster under randomized
:class:`~repro.faults.FaultPlan`\\ s — worker crashes, partitions, switch
failover, lossy links — and checks the **task-conservation invariant**:

* every submitted task completes exactly once (visible completion;
  duplicate executions from resubmission races are suppressed and
  counted, never double-reported);
* no completion is recorded for a task that was never submitted.

It also reports *how much* the faults hurt: goodput dip relative to the
pre-fault baseline and the time from the last fault clearing until
goodput is back within 90% of that baseline.

Usage::

    python -m repro.experiments.fault_tolerance [--seeds N] [--kind ...]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.scheduler import DraconisProgram
from repro.experiments import common
from repro.experiments.parallel_runner import add_jobs_argument, parallel_map
from repro.faults import (
    PLAN_KINDS,
    FaultInjector,
    FaultPlan,
    event_end,
    event_start,
)
from repro.metrics.collector import MetricsCollector
from repro.sim.core import ms
from repro.sim.rng import RngStreams
from repro.workloads import exponential, open_loop, rate_for_utilization

#: moderate load — one crashed worker out of three must leave headroom,
#: otherwise recovery is capacity-bound and the invariant check times out
DEFAULT_UTILIZATION = 0.45
#: generous resubmit timeout; recovery correctness is what's under test,
#: not timeout tuning
DEFAULT_TIMEOUT_FACTOR = 4.0


@dataclass
class ChaosResult:
    """One (seed, kind) chaos run and its verdict."""

    seed: int
    kind: str
    plan: str
    faults_fired: int
    tasks_submitted: int
    tasks_completed: int
    resubmissions: int
    duplicate_finishes: int
    duplicate_completions: int
    injected: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    baseline_tps: float = 0.0
    dip_fraction: float = 0.0
    recovery_ns: int = 0

    @property
    def conserved(self) -> bool:
        return not self.violations

    def row(self) -> str:
        verdict = "OK" if self.conserved else f"{len(self.violations)} VIOLATIONS"
        recovery = (
            "never"
            if self.recovery_ns < 0
            else f"{self.recovery_ns / 1e6:5.1f}ms"
        )
        injected = sum(self.injected.values())
        return (
            f"seed={self.seed:<3} {self.kind:>9}  faults={self.faults_fired:<2} "
            f"tasks={self.tasks_completed}/{self.tasks_submitted}  "
            f"resub={self.resubmissions:<4} dup_exec={self.duplicate_finishes:<3} "
            f"injected={injected:<5} dip={self.dip_fraction:5.1%}  "
            f"recovery={recovery}  {verdict}"
        )


def conservation_violations(
    collector: MetricsCollector, clients: Sequence
) -> List[str]:
    """Every way a run can break exactly-once visible completion."""
    violations: List[str] = []
    for key, record in sorted(collector.records.items()):
        if record.submitted_at < 0:
            violations.append(
                f"task {key}: lifecycle events recorded but never submitted"
            )
        if record.completed_at < 0:
            violations.append(f"task {key}: submitted but never completed")
    for client in clients:
        if client.stats.tasks_completed != client.stats.tasks_submitted:
            violations.append(
                f"client{client.uid}: {client.stats.tasks_completed} unique "
                f"completions for {client.stats.tasks_submitted} submissions"
            )
    return violations


def goodput_bins(
    collector: MetricsCollector, horizon_ns: int, bin_ns: int
) -> List[int]:
    """Tasks finishing execution per time bin over [0, horizon)."""
    bins = [0] * max(1, -(-horizon_ns // bin_ns))
    for record in collector.records.values():
        if 0 <= record.finished_at < horizon_ns:
            bins[record.finished_at // bin_ns] += 1
    return bins


def recovery_metrics(
    collector: MetricsCollector,
    plan: FaultPlan,
    duration_ns: int,
    bin_ns: int = ms(1),
) -> Tuple[float, float, int]:
    """(baseline_tps, dip_fraction, recovery_ns) for one run.

    Baseline is mean goodput of the whole bins before the first fault
    (bin 0 skipped as warm-up); the dip is the worst bin while any fault
    is active; recovery is the gap between the last fault clearing and
    the first bin back within 90% of baseline (-1 if that never happens
    inside the submission horizon).
    """
    if not len(plan):
        return 0.0, 0.0, 0
    bins = goodput_bins(collector, duration_ns, bin_ns)
    fault_start = min(event_start(e) for e in plan)
    fault_end = min(max(event_end(e) for e in plan), duration_ns - 1)
    start_bin = max(1, fault_start // bin_ns)
    end_bin = min(fault_end // bin_ns, len(bins) - 1)
    pre = bins[1:start_bin]
    baseline = sum(pre) / len(pre) if pre else 0.0
    if baseline <= 0:
        return 0.0, 0.0, 0
    dip = min(bins[start_bin : end_bin + 1], default=baseline)
    dip_fraction = max(0.0, 1.0 - dip / baseline)
    if dip_fraction == 0.0:
        return baseline / (bin_ns / 1e9), 0.0, 0
    recovery_ns = -1
    for i in range(end_bin + 1, len(bins)):
        if bins[i] >= 0.9 * baseline:
            recovery_ns = max(0, i * bin_ns - fault_end)
            break
    return baseline / (bin_ns / 1e9), dip_fraction, recovery_ns


def run_chaos(
    seed: int,
    kind: str = "mixed",
    duration_ns: int = ms(30),
    drain_ns: int = ms(30),
    workers: int = 3,
    executors_per_worker: int = 4,
    utilization: float = DEFAULT_UTILIZATION,
    timeout_factor: float = DEFAULT_TIMEOUT_FACTOR,
    park_pulls: bool = True,
    obs=None,
) -> ChaosResult:
    """Run one workload under one randomized fault plan and judge it.

    ``obs`` optionally attaches a :class:`repro.obs.TelemetryBus`; span
    chains survive switch failover because the standby program reads the
    bus through ``switch.obs`` (see ``repro.obs.report --chaos``).
    """
    config = common.ClusterConfig(
        scheduler="draconis",
        workers=workers,
        executors_per_worker=executors_per_worker,
        seed=seed,
        queue_capacity=4096,
        timeout_factor=timeout_factor,
        park_pulls=park_pulls,
        obs=obs,
    )
    rngs = RngStreams(seed)
    sampler = exponential(150)
    rate = rate_for_utilization(
        utilization, config.total_executors, sampler.mean_ns
    )
    events = list(
        open_loop(rngs.stream("chaos-arrivals"), rate, sampler, duration_ns)
    )
    handles = common.build_cluster(config, [events], rngs=rngs)

    plan = FaultPlan.randomized(
        rngs.stream("chaos-plan"),
        duration_ns,
        worker_nodes=[w.spec.node_id for w in handles.workers],
        kind=kind,
    )

    def standby_program() -> DraconisProgram:
        # The paper's failover story: a standby switch with *empty*
        # registers takes over; queued-but-unassigned tasks are lost and
        # repaired by client resubmission (§3.3).
        return DraconisProgram(
            policy=config.policy,
            queue_capacity=config.queue_capacity,
            retrieve_mode=config.retrieve_mode,
            queues_in_stages=config.queues_in_stages,
            park_pulls=config.park_pulls,
            pull_ttl_ns=config.pull_ttl_ns,
        )

    injector = FaultInjector(
        handles.sim,
        plan,
        handles.topology,
        workers=handles.workers,
        switch=handles.switch,
        program_factory=standby_program,
        rng=rngs.stream("chaos-injector"),
    ).arm()

    handles.sim.run(until=duration_ns + drain_ns)

    collector = handles.collector
    baseline_tps, dip_fraction, recovery_ns = recovery_metrics(
        collector, plan, duration_ns
    )
    return ChaosResult(
        seed=seed,
        kind=kind,
        plan=plan.describe(),
        faults_fired=injector.stats.total(),
        tasks_submitted=collector.submitted_count(),
        tasks_completed=collector.completed_count(),
        resubmissions=collector.resubmissions,
        duplicate_finishes=collector.duplicate_finishes,
        duplicate_completions=collector.duplicate_completions,
        injected=injector.injected_totals(),
        violations=conservation_violations(collector, handles.clients),
        baseline_tps=baseline_tps,
        dip_fraction=dip_fraction,
        recovery_ns=recovery_ns,
    )


def _chaos_cell(item: Tuple[int, str, Dict]) -> ChaosResult:
    """One (seed, kind) cell — module-level so the pool can pickle it."""
    seed, kind, kwargs = item
    return run_chaos(seed, kind=kind, **kwargs)


def run(
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    kinds: Sequence[str] = PLAN_KINDS,
    duration_ns: int = ms(30),
    drain_ns: int = ms(30),
    jobs: Optional[int] = None,
    **kwargs,
) -> List[ChaosResult]:
    """The acceptance sweep: every kind × every seed, forked across cores.

    Every cell seeds its own ``RngStreams`` and simulator, so the results
    are identical (content and order) whatever ``jobs`` is; an attached
    ``obs`` bus forces the serial path since its callbacks cannot cross a
    process boundary.
    """
    cell_kwargs = dict(duration_ns=duration_ns, drain_ns=drain_ns, **kwargs)
    cells = [(seed, kind, cell_kwargs) for kind in kinds for seed in seeds]
    return parallel_map(
        _chaos_cell, cells, jobs=jobs, serial=kwargs.get("obs") is not None
    )


def print_table(results: Sequence[ChaosResult]) -> None:
    for result in results:
        print(result.row())
        if result.violations:
            for violation in result.violations[:5]:
                print(f"    ! {violation}")
            extra = len(result.violations) - 5
            if extra > 0:
                print(f"    ! ... and {extra} more")
    broken = [r for r in results if not r.conserved]
    print(
        f"\n{len(results) - len(broken)}/{len(results)} runs conserved "
        f"every task exactly once"
    )
    if broken:
        raise SystemExit(1)


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5, help="seeds per kind")
    parser.add_argument(
        "--kind",
        choices=PLAN_KINDS,
        action="append",
        help="restrict to one or more plan kinds (default: all)",
    )
    parser.add_argument("--duration-ms", type=float, default=30.0)
    parser.add_argument("--drain-ms", type=float, default=30.0)
    add_jobs_argument(parser)
    args = parser.parse_args(argv)
    results = run(
        seeds=range(args.seeds),
        kinds=tuple(args.kind) if args.kind else PLAN_KINDS,
        duration_ns=int(ms(args.duration_ms)),
        drain_ns=int(ms(args.drain_ms)),
        jobs=args.jobs,
    )
    print_table(results)


if __name__ == "__main__":
    main()
