"""Figure 7: packet recirculation and task drops, 250 µs workload (§8.3).

Paper result: R2P2-1's recirculations grow with load — ~50 % of all
processed packets at 93 % and ~75 % at 97 % — and its bounded
recirculation bandwidth drops tasks; R2P2-3 eliminates recirculations and
drops (at the cost of node-level blocking); Draconis recirculates only
0.02–0.05 % of packets and never drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments import calibration
from repro.experiments.common import ClusterConfig, run_workload
from repro.sim.core import ms
from repro.workloads import fixed, open_loop, rate_for_utilization

TASK_US = 250.0
DEFAULT_LOADS = (0.825, 0.875, 0.93, 0.975)

SYSTEMS = (
    ("r2p2-1", dict(scheduler="r2p2", jbsq_k=1)),
    ("r2p2-3", dict(scheduler="r2p2", jbsq_k=3)),
    ("draconis", dict(scheduler="draconis")),
)


@dataclass
class Fig7Row:
    system: str
    utilization: float
    recirculation_fraction: float
    recirc_packet_drops: int
    task_drop_fraction: float  # tasks needing timeout-resubmission
    p99_us: float


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ns: int = ms(60),
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Fig7Row]:
    rows: List[Fig7Row] = []
    sampler = fixed(TASK_US)
    warmup = duration_ns // 8
    for label, overrides in SYSTEMS:
        if systems is not None and label not in systems:
            continue
        for load in loads:
            config = ClusterConfig(
                seed=seed,
                timeout_factor=calibration.CLIENT_TIMEOUT_FACTOR,
                **overrides,
            )
            rate = rate_for_utilization(
                load, config.total_executors, sampler.mean_ns
            )

            def factory(rngs, _rate=rate):
                return open_loop(
                    rngs.stream("arrivals"), _rate, sampler, duration_ns
                )

            result = run_workload(
                config, factory, duration_ns=duration_ns, warmup_ns=warmup
            )
            rows.append(
                Fig7Row(
                    system=label,
                    utilization=load,
                    recirculation_fraction=result.recirculation_fraction,
                    recirc_packet_drops=result.recirc_dropped,
                    task_drop_fraction=(
                        result.resubmissions / max(1, result.tasks_submitted)
                    ),
                    p99_us=result.scheduling.p99_us,
                )
            )
    return rows


def print_table(rows: List[Fig7Row]) -> None:
    print("Figure 7 — recirculation and drops, 250 us tasks")
    print(
        f"{'system':>10} {'util':>6} {'recirc%':>8} {'pkt drops':>10} "
        f"{'task drops':>11} {'p99':>10}"
    )
    for row in rows:
        print(
            f"{row.system:>10} {row.utilization:>6.3f} "
            f"{row.recirculation_fraction * 100:>7.2f}% "
            f"{row.recirc_packet_drops:>10} "
            f"{row.task_drop_fraction * 100:>10.2f}% "
            f"{row.p99_us:>9.1f}u"
        )


if __name__ == "__main__":
    print_table(run())
