"""Figure 11: resource-constraint-aware scheduling (§8.5).

Setup (paper): three node groups — G1 has resource A, G2 has A+B, G3 has
A+B+C. Three equal phases of tasks requiring A, then B, then C. Expected
throughput timeline: all groups busy in phase A; only G2+G3 in phase B;
only G3 in phase C, where G3 is overloaded and the backlog finishes after
the last submission (the paper's 110 s tail on a 90 s run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.policies import ResourcePolicy
from repro.experiments.common import ClusterConfig, build_cluster
from repro.metrics.collector import MetricsCollector
from repro.sim.core import ms, us
from repro.sim.rng import RngStreams
from repro.workloads.resources import (
    GROUP_RESOURCES,
    RESOURCE_A,
    RESOURCE_B,
    RESOURCE_C,
    resource_phases_workload,
)

#: worker node -> group assignment for a 9-node cluster (3 per group)
def group_of(node_id: int, workers: int = 9) -> str:
    return ("G1", "G2", "G3")[node_id * 3 // workers]


@dataclass
class Fig11Row:
    """Average per-node throughput of each group in one time bucket."""

    bucket_start_ns: int
    g1_tps: float
    g2_tps: float
    g3_tps: float


def run(
    phase_ns: int = ms(30),
    workers: int = 9,
    executors_per_worker: int = 8,
    task_us: float = 250.0,
    # Against all executors; phase B then runs G2+G3 at 0.75 (below
    # saturation, as in the paper) and phase C overloads G3 at 1.5 —
    # producing the paper's post-submission drain tail.
    utilization: float = 0.5,
    buckets_per_phase: int = 6,
    seed: int = 0,
) -> List[Fig11Row]:
    """Scaled-down Fig. 11 (the paper's phases are 30 s; default 30 ms)."""
    config = ClusterConfig(
        scheduler="draconis",
        workers=workers,
        executors_per_worker=executors_per_worker,
        seed=seed,
        policy=ResourcePolicy(max_swaps=24),
        exec_rsrc_for_node=lambda node_id: GROUP_RESOURCES[
            group_of(node_id, workers)
        ],
    )
    total_rate = (
        utilization * config.total_executors / (task_us * 1e-6)
    )

    def factory(rngs: RngStreams):
        return resource_phases_workload(
            rngs.stream("resources"),
            rate_tps=total_rate,
            phase_ns=phase_ns,
            duration_ns=us(task_us),
        )

    rngs = RngStreams(seed)
    events = list(factory(rngs))
    handles = build_cluster(config, [events], rngs=rngs)
    horizon = phase_ns * 3
    handles.sim.run(until=horizon + phase_ns)  # drain the G3 backlog

    # Bucketized per-node throughput by group, from finish timestamps.
    bucket_ns = phase_ns // buckets_per_phase
    n_buckets = (horizon + phase_ns) // bucket_ns
    group_nodes: Dict[str, int] = {"G1": 0, "G2": 0, "G3": 0}
    for node_id in range(workers):
        group_nodes[group_of(node_id, workers)] += 1
    counts = {
        g: [0] * n_buckets for g in ("G1", "G2", "G3")
    }
    for record in handles.collector.records.values():
        if record.finished_at < 0 or record.node_id < 0:
            continue
        bucket = min(int(record.finished_at // bucket_ns), n_buckets - 1)
        counts[group_of(record.node_id, workers)][bucket] += 1

    rows = []
    for b in range(n_buckets):
        seconds = bucket_ns / 1e9
        rows.append(
            Fig11Row(
                bucket_start_ns=b * bucket_ns,
                g1_tps=counts["G1"][b] / seconds / group_nodes["G1"],
                g2_tps=counts["G2"][b] / seconds / group_nodes["G2"],
                g3_tps=counts["G3"][b] / seconds / group_nodes["G3"],
            )
        )
    return rows


def print_table(rows: List[Fig11Row]) -> None:
    print("Figure 11 — per-node throughput by group (resource phases)")
    print(f"{'t (ms)':>8} {'G1':>10} {'G2':>10} {'G3':>10}")
    for row in rows:
        print(
            f"{row.bucket_start_ns / 1e6:>8.1f} {row.g1_tps:>9.0f}t "
            f"{row.g2_tps:>9.0f}t {row.g3_tps:>9.0f}t"
        )


if __name__ == "__main__":
    print_table(run())
