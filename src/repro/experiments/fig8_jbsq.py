"""Figure 8: the effect of the JBSQ queue size on R2P2 (§8.3).

Paper result (100 µs and 250 µs workloads): R2P2-1 matches Draconis' tail
at low utilization but starts dropping tasks as load grows (5 % of tasks
at 82 % for 100 µs; 9 % at 93 % for 250 µs), spiking its tail via client
timeout-resubmissions; R2P2-3 never drops but its tail equals the task
service time from 30–40 % utilization (node-level blocking). Draconis
drops nothing and keeps a microsecond tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments import calibration
from repro.experiments.common import ClusterConfig, run_workload
from repro.sim.core import ms
from repro.workloads import fixed, open_loop, rate_for_utilization

DEFAULT_LOADS = (0.3, 0.5, 0.7, 0.82, 0.93)

SYSTEMS = (
    ("draconis", dict(scheduler="draconis")),
    ("r2p2-1", dict(scheduler="r2p2", jbsq_k=1)),
    ("r2p2-3", dict(scheduler="r2p2", jbsq_k=3)),
)


@dataclass
class Fig8Row:
    task_us: float
    system: str
    utilization: float
    p99_us: float
    dropped: bool  # the paper's yellow markers
    task_drop_fraction: float


def run(
    task_durations_us: Sequence[float] = (100.0, 250.0),
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ns: int = ms(60),
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Fig8Row]:
    rows: List[Fig8Row] = []
    warmup = duration_ns // 8
    for task_us in task_durations_us:
        sampler = fixed(task_us)
        for label, overrides in SYSTEMS:
            if systems is not None and label not in systems:
                continue
            for load in loads:
                config = ClusterConfig(
                    seed=seed,
                    timeout_factor=calibration.CLIENT_TIMEOUT_FACTOR,
                    **overrides,
                )
                rate = rate_for_utilization(
                    load, config.total_executors, sampler.mean_ns
                )

                def factory(rngs, _rate=rate, _sampler=sampler):
                    return open_loop(
                        rngs.stream("arrivals"), _rate, _sampler, duration_ns
                    )

                result = run_workload(
                    config, factory, duration_ns=duration_ns, warmup_ns=warmup
                )
                drop_fraction = result.resubmissions / max(
                    1, result.tasks_submitted
                )
                rows.append(
                    Fig8Row(
                        task_us=task_us,
                        system=label,
                        utilization=load,
                        p99_us=result.scheduling.p99_us,
                        dropped=result.recirc_dropped > 0,
                        task_drop_fraction=drop_fraction,
                    )
                )
    return rows


def print_table(rows: List[Fig8Row]) -> None:
    print("Figure 8 — R2P2 JBSQ size vs Draconis")
    current = None
    for row in rows:
        if row.task_us != current:
            current = row.task_us
            print(f"\n[{current:.0f} us tasks]")
            print(f"{'system':>10} {'util':>6} {'p99':>10} {'drops':>8}")
        marker = " *DROPS*" if row.dropped else ""
        print(
            f"{row.system:>10} {row.utilization:>6.2f} {row.p99_us:>9.1f}u "
            f"{row.task_drop_fraction * 100:>6.2f}%{marker}"
        )


if __name__ == "__main__":
    print_table(run())
