"""Figure 5b: scheduling throughput with no-op executors (§8.2).

Paper result: Draconis scales linearly with executors to 58 M decisions/s
at 208 executors (and is nowhere near the switch's packet budget);
Draconis-DPDK-Server caps at ~1.1 M tps (52× less), Sparrow at ~500 k
(1 scheduler) / ~900 k (2), sockets at ~160 k.

Executors retrieve a no-op task, drop it instantly, and re-request, so
the scheduler is the only bottleneck. The simulation reproduces the
*scaling shape*; absolute Draconis numbers track executors/RTT (each
executor completes one no-op per round trip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import ClusterConfig, run_workload
from repro.sim.core import ms, us
from repro.workloads import noop_fountain

DEFAULT_EXECUTOR_COUNTS = (16, 48, 96, 160, 208)

#: (label, config overrides, supply ceiling in tps). A throughput
#: benchmark drives each system near its saturation point; feeding far
#: beyond a server's receive ring only tail-drops responses and starves
#: executors, so each ceiling sits just under the system's capacity.
SYSTEMS = (
    ("draconis", dict(scheduler="draconis"), None),
    ("draconis-dpdk", dict(scheduler="draconis-dpdk"), 1_060_000),
    ("draconis-socket", dict(scheduler="draconis-socket"), 153_000),
    ("1-sparrow", dict(scheduler="sparrow", sparrow_schedulers=1), 500_000),
    (
        "2-sparrow",
        dict(scheduler="sparrow", sparrow_schedulers=2, clients=2),
        1_000_000,
    ),
)


@dataclass
class Fig5bRow:
    system: str
    executors: int
    throughput_tps: float


def _noop_factory(executors: int, horizon_ns: int, supply_cap_tps=None):
    """Keep the scheduler queue topped up with no-op tasks.

    The fountain feeds ~1.3× the expected drain rate (per-executor no-op
    cycle ≈ one RTT) so the scheduler, never the supply, is the
    bottleneck; overflow is bounced back to the client and retried.
    Tasks go out one per packet so the submission path costs no
    recirculations (clients in the load experiments submit individual
    tasks, §8).
    """
    batch = 8
    drain_tps = 1.3 * executors / 2.6e-6
    if supply_cap_tps is not None:
        drain_tps = min(drain_tps, supply_cap_tps)
    interval_ns = max(50, int(batch / drain_tps * 1e9))

    def factory(rngs):
        return noop_fountain(
            horizon_ns, batch=batch, interval_ns=interval_ns
        )

    return factory


def run(
    executor_counts: Sequence[int] = DEFAULT_EXECUTOR_COUNTS,
    duration_ns: int = ms(20),
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Fig5bRow]:
    rows: List[Fig5bRow] = []
    warmup = duration_ns // 4
    for label, overrides, supply_cap in SYSTEMS:
        if systems is not None and label not in systems:
            continue
        for executors in executor_counts:
            workers = max(1, executors // 16)
            per_worker = executors // workers
            config = ClusterConfig(
                seed=seed,
                workers=workers,
                executors_per_worker=per_worker,
                queue_capacity=1 << 15,
                tasks_per_packet=1,
                **overrides,
            )
            factory = _noop_factory(
                config.total_executors, duration_ns, supply_cap
            )
            result = run_workload(
                config,
                factory,
                duration_ns=duration_ns,
                warmup_ns=warmup,
                drain_ns=0,
            )
            rows.append(
                Fig5bRow(
                    system=label,
                    executors=config.total_executors,
                    throughput_tps=result.throughput_tps,
                )
            )
    return rows


def print_table(rows: List[Fig5bRow]) -> None:
    print("Figure 5b — scheduling throughput, no-op workload")
    print(f"{'system':>16} {'executors':>10} {'throughput':>14}")
    for row in rows:
        print(
            f"{row.system:>16} {row.executors:>10} "
            f"{row.throughput_tps / 1e6:>11.2f} Mtps"
        )


def scaling_ratio(rows: List[Fig5bRow], system: str = "draconis") -> float:
    """Throughput ratio between the largest and smallest executor count."""
    mine = sorted(
        (r for r in rows if r.system == system), key=lambda r: r.executors
    )
    if len(mine) < 2 or mine[0].throughput_tps == 0:
        return float("nan")
    return mine[-1].throughput_tps / mine[0].throughput_tps


if __name__ == "__main__":
    table = run()
    print_table(table)
    print(f"\nDraconis scaling (largest/smallest executors): "
          f"{scaling_ratio(table):.1f}x (paper: linear)")
