"""Chaos-fuzz campaign entry point.

Runs :class:`repro.verify.FaultFuzzer`: N scenarios sampled from
consecutive seeds, each a Draconis cluster under a grammar-generated
fault schedule, judged by the full invariant oracle. Failures are
shrunk to minimal plans and written as replayable artifacts::

    python -m repro.experiments.fuzz --iterations 60 --jobs 0
    python -m repro.experiments.fuzz --artifact-dir fuzz-artifacts
    python -m repro.verify.replay fuzz-artifacts/seed42.min.json

Exit status is 0 iff every scenario upheld every invariant. Each
failure produces two artifacts in ``--artifact-dir``: the original
failing run (``seedN.json``) and the shrunk minimal reproduction
(``seedN.min.json``), either replayable bit-for-bit with
``python -m repro.verify.replay``.
"""

from __future__ import annotations

import argparse
import os
from typing import Optional, Sequence

from repro.experiments.parallel_runner import add_jobs_argument
from repro.verify import FaultFuzzer, run_scenario, save_artifact


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--iterations", type=int, default=60, help="scenarios to run"
    )
    parser.add_argument(
        "--base-seed", type=int, default=0, help="first scenario seed"
    )
    parser.add_argument(
        "--max-events", type=int, default=8, help="fault events per plan cap"
    )
    parser.add_argument(
        "--controller-replicas",
        type=int,
        default=None,
        help="pin the control plane size (1 = unreplicated, >= 2 "
        "replicates); default samples the toggle per seed",
    )
    parser.add_argument(
        "--shrink-attempts",
        type=int,
        default=200,
        help="re-run budget per failure during shrinking",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="write failing plans (original + minimized) here",
    )
    add_jobs_argument(parser)
    args = parser.parse_args(argv)

    fuzzer = FaultFuzzer(
        iterations=args.iterations,
        base_seed=args.base_seed,
        max_events=args.max_events,
        jobs=args.jobs,
        shrink_attempts=args.shrink_attempts,
        controller_replicas=args.controller_replicas,
    )
    results, failures = fuzzer.run()
    for result in results:
        print(result.row())

    checks = sum(r.checks for r in results)
    print(
        f"\n{len(results) - len(failures)}/{len(results)} scenarios upheld "
        f"every invariant ({checks} oracle checks)"
    )
    if not failures:
        return 0

    for failure in failures:
        result = failure.result
        seed = result.scenario.seed
        print(
            f"\nseed {seed}: {', '.join(result.invariants_violated())} — "
            f"shrunk {failure.original_events} -> "
            f"{failure.minimized_events} event(s) in "
            f"{failure.shrink_attempts} attempts"
        )
        for violation in result.violations[:5]:
            print(f"  ! {violation}")
        if args.artifact_dir:
            os.makedirs(args.artifact_dir, exist_ok=True)
            original = os.path.join(args.artifact_dir, f"seed{seed}.json")
            save_artifact(result, original)
            # the minimized artifact records the *minimized* run's own
            # outcome so replay compares against what it reproduces
            minimized = run_scenario(failure.minimized)
            minimized_path = os.path.join(
                args.artifact_dir, f"seed{seed}.min.json"
            )
            save_artifact(minimized, minimized_path)
            print(f"  wrote {original} and {minimized_path}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
