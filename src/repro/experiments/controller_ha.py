"""Controller HA experiment: replicated control plane vs single controller.

The lease controller (``repro.ctrl``) is the component that turns a
worker crash into bounded-time reclamation instead of client-visible
loss — which makes the controller itself the last single point of
failure in the recovery story. This experiment kills it and measures
what replication buys:

* **replicated arm** (``--replicas >= 2``): N :class:`~repro.ctrl.
  replication.ReplicaController` instances elect a leader through the
  switch's election register. The initial leader is crashed permanently
  at a swept fraction of the run, and a worker is crashed shortly after
  — so the *successor* must win a term, reconcile, and reclaim the dead
  worker's in-flight tasks. Client resubmission is disabled: every task
  that survives does so through the replicated control plane alone.
  Acceptance: zero tasks lost at every crash instant, and the takeover
  (next term grant) lands within the group's election timeout bound.
* **baseline arm** (``--replicas 1``): the same crash schedule against
  an unreplicated controller. With the controller dead and client
  timeouts off, the dead worker's in-flight tasks have no recovery path
  — the run is *expected* to lose them, quantifying what the paper's
  single-controller deployment risks.

The summary carries the control-plane health counters (terms, elections,
fencing rejections, leases/tasks reclaimed) so CI can chart them.

Usage::

    python -m repro.experiments.controller_ha [--seeds N] [--out s.json]
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments import common
from repro.experiments.parallel_runner import add_jobs_argument, parallel_map
from repro.faults import FaultInjector, FaultPlan
from repro.faults.events import ControllerCrash, WorkerCrash
from repro.sim.core import ms
from repro.sim.rng import RngStreams
from repro.workloads import exponential, open_loop, rate_for_utilization

DEFAULT_UTILIZATION = 0.6
#: crash instants swept, as fractions of the workload duration
DEFAULT_CRASH_FRACTIONS = (0.25, 0.5, 0.75)
#: worker crash follows the controller crash by this much — long enough
#: for a replicated group to have elected a successor, short enough that
#: the baseline controller is definitely still dead
WORKER_CRASH_DELAY_NS = ms(2)


class _SoloController:
    """Crash adapter so the injector drives a single controller too."""

    def __init__(self, controller) -> None:
        self.controller = controller

    def crash(self, replica_id: int) -> None:
        self.controller.crash()

    def restart(self, replica_id: int) -> None:
        self.controller.restart()


@dataclass
class HaResult:
    """One (seed, replicas, crash instant) cell."""

    seed: int
    replicas: int
    crash_at_ns: int
    tasks_submitted: int
    tasks_completed: int
    tasks_lost: int
    #: ns from the leader crash to the successor's term grant
    #: (None: baseline arm, or no successor was ever granted)
    takeover_ns: Optional[int]
    #: the bound takeover must respect: lease + 2 election polls
    takeover_bound_ns: int
    term: int
    elections_held: int
    fencing_rejections: int
    leases_reclaimed: int
    tasks_reclaimed: int
    step_downs: int
    violations: List[str] = field(default_factory=list)

    @property
    def replicated(self) -> bool:
        return self.replicas >= 2

    @property
    def ok(self) -> bool:
        if not self.replicated:
            return True  # the baseline is *expected* to lose tasks
        return not self.violations

    def row(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        takeover = (
            "-"
            if self.takeover_ns is None
            else f"{self.takeover_ns / 1e3:.0f}us"
        )
        return (
            f"seed={self.seed:<3} replicas={self.replicas} "
            f"crash@{self.crash_at_ns / 1e6:4.1f}ms  "
            f"tasks={self.tasks_completed}/{self.tasks_submitted}  "
            f"lost={self.tasks_lost:<4} takeover={takeover:<7} "
            f"term={self.term} reclaimed={self.tasks_reclaimed:<3} "
            f"fenced={self.fencing_rejections:<2} {verdict}"
        )


def run_ha(
    seed: int,
    replicas: int = 3,
    crash_fraction: float = 0.5,
    duration_ns: int = ms(20),
    drain_ns: int = ms(20),
    workers: int = 3,
    executors_per_worker: int = 4,
    utilization: float = DEFAULT_UTILIZATION,
    obs=None,
) -> HaResult:
    """One run: crash the (initial) leader, then a worker, then measure.

    Replica 0 always wins the first election (deterministic start
    stagger), so ``ControllerCrash(replica_id=0)`` is a leader kill; the
    dead worker's tasks can only come back through whoever leads next.
    """
    crash_at_ns = int(duration_ns * crash_fraction)
    config = common.ClusterConfig(
        scheduler="draconis",
        workers=workers,
        executors_per_worker=executors_per_worker,
        seed=seed,
        queue_capacity=4096,
        timeout_factor=None,  # no client repair: the controller or nothing
        park_pulls=True,
        controller=True,
        controller_replicas=replicas,
        obs=obs,
    )
    rngs = RngStreams(seed)
    sampler = exponential(150)
    rate = rate_for_utilization(
        utilization, config.total_executors, sampler.mean_ns
    )
    events = list(
        open_loop(rngs.stream("ha-arrivals"), rate, sampler, duration_ns)
    )
    handles = common.build_cluster(config, [events], rngs=rngs)

    group = handles.ctrl_group
    if group is not None:
        controllers = group
        bound_ns = group.election_timeout_bound()
    else:
        controllers = _SoloController(handles.controller)
        bound_ns = 0
    plan = FaultPlan(
        [
            ControllerCrash(
                at_ns=crash_at_ns, replica_id=0, restart_after_ns=None
            ),
            WorkerCrash(
                at_ns=crash_at_ns + WORKER_CRASH_DELAY_NS,
                node_id=0,
                restart_after_ns=None,
            ),
        ]
    )
    FaultInjector(
        handles.sim,
        plan,
        handles.topology,
        workers=handles.workers,
        switch=handles.switch,
        rng=rngs.stream("ha-injector"),
        controllers=controllers,
    ).arm()

    handles.sim.run(until=duration_ns + drain_ns)

    collector = handles.collector
    submitted = collector.submitted_count()
    completed = collector.completed_count()
    lost = submitted - completed

    election = handles.switch.election
    takeover_ns: Optional[int] = None
    for _term, _leader, granted_at in election.history:
        if granted_at > crash_at_ns:
            takeover_ns = granted_at - crash_at_ns
            break

    if group is not None:
        stats = group.stats()
    else:
        audit = handles.controller.audit() if handles.controller else {}
        stats = {
            "term": 0,
            "elections_held": 0,
            "fencing_rejections": 0,
            "leases_reclaimed": audit.get("leases_reclaimed", 0),
            "tasks_reclaimed": audit.get("tasks_reclaimed", 0),
            "step_downs": 0,
        }

    violations: List[str] = []
    if replicas >= 2:
        if lost:
            violations.append(
                f"replicated arm lost {lost} task(s) across the "
                f"leader+worker crash"
            )
        if takeover_ns is None:
            violations.append(
                "leader crashed but no successor was ever granted a term"
            )
        elif takeover_ns > bound_ns:
            violations.append(
                f"takeover took {takeover_ns / 1e3:.1f}us, above the "
                f"election timeout bound {bound_ns / 1e3:.1f}us"
            )
    return HaResult(
        seed=seed,
        replicas=replicas,
        crash_at_ns=crash_at_ns,
        tasks_submitted=submitted,
        tasks_completed=completed,
        tasks_lost=lost,
        takeover_ns=takeover_ns if replicas >= 2 else None,
        takeover_bound_ns=bound_ns,
        term=stats.get("term", 0),
        elections_held=stats.get("elections_held", 0),
        fencing_rejections=stats.get("fencing_rejections", 0),
        leases_reclaimed=stats.get("leases_reclaimed", 0),
        tasks_reclaimed=stats.get("tasks_reclaimed", 0),
        step_downs=stats.get("step_downs", 0),
        violations=violations,
    )


def _ha_cell(item) -> HaResult:
    """One sweep cell — module-level so the pool can pickle it."""
    seed, replicas, fraction, kwargs = item
    return run_ha(seed, replicas=replicas, crash_fraction=fraction, **kwargs)


def run(
    seeds: Sequence[int] = (0, 1, 2),
    replica_counts: Sequence[int] = (1, 3),
    crash_fractions: Sequence[float] = DEFAULT_CRASH_FRACTIONS,
    jobs: Optional[int] = None,
    **kwargs,
) -> List[HaResult]:
    """The acceptance sweep: replicas × crash instants × seeds."""
    cells = [
        (seed, replicas, fraction, kwargs)
        for replicas in replica_counts
        for fraction in crash_fractions
        for seed in seeds
    ]
    return parallel_map(
        _ha_cell, cells, jobs=jobs, serial=kwargs.get("obs") is not None
    )


def summarize(results: Sequence[HaResult]) -> Dict:
    """JSON-ready summary (uploaded as a CI artifact)."""
    replicated = [r for r in results if r.replicated]
    baseline = [r for r in results if not r.replicated]
    baseline_lost = sum(r.tasks_lost for r in baseline)
    ok = all(r.ok for r in results)
    if baseline and baseline_lost == 0:
        # The baseline arm exists to demonstrate the unreplicated
        # failure mode; a lossless baseline means the scenario never put
        # tasks at risk and the replicated zeros prove nothing.
        ok = False
    return {
        "runs": [asdict(r) for r in results],
        "replicated_runs": len(replicated),
        "replicated_tasks_lost": sum(r.tasks_lost for r in replicated),
        "replicated_max_takeover_ns": max(
            (r.takeover_ns or 0 for r in replicated), default=0
        ),
        "takeover_bound_ns": max(
            (r.takeover_bound_ns for r in replicated), default=0
        ),
        "fencing_rejections": sum(r.fencing_rejections for r in replicated),
        "tasks_reclaimed": sum(r.tasks_reclaimed for r in results),
        "baseline_runs": len(baseline),
        "baseline_tasks_lost": baseline_lost,
        "ok": ok,
    }


def print_table(results: Sequence[HaResult]) -> None:
    for result in results:
        print(result.row())
        for violation in result.violations:
            print(f"    ! {violation}")
    summary = summarize(results)
    print(
        f"\nreplicated: {summary['replicated_tasks_lost']} tasks lost, "
        f"max takeover "
        f"{summary['replicated_max_takeover_ns'] / 1e3:.1f}us "
        f"(bound {summary['takeover_bound_ns'] / 1e3:.1f}us), "
        f"{summary['fencing_rejections']} fenced stale action(s)"
    )
    print(
        f"baseline:   {summary['baseline_tasks_lost']} tasks lost with "
        f"the single controller dead (the failure replication removes)"
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3, help="seeds per cell")
    parser.add_argument(
        "--replicas",
        type=int,
        nargs="+",
        default=[1, 3],
        help="replica counts to sweep (1 = unreplicated baseline)",
    )
    parser.add_argument("--duration-ms", type=float, default=20.0)
    parser.add_argument("--drain-ms", type=float, default=20.0)
    parser.add_argument(
        "--out", help="write the JSON summary to this path (CI artifact)"
    )
    add_jobs_argument(parser)
    args = parser.parse_args(argv)
    results = run(
        seeds=range(args.seeds),
        replica_counts=args.replicas,
        duration_ns=int(ms(args.duration_ms)),
        drain_ns=int(ms(args.drain_ms)),
        jobs=args.jobs,
    )
    print_table(results)
    summary = summarize(results)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"summary written to {args.out}")
    if not summary["ok"]:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
