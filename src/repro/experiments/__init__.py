"""Experiment harness: one module per table/figure in the paper's §8.

``repro.experiments.common`` builds clusters for every scheduler under
test and runs workloads against them; the ``figN_*`` modules reproduce the
corresponding figure's sweep and print the paper-vs-measured rows recorded
in EXPERIMENTS.md. Every module exposes a ``run(...)`` entry point with a
``scale`` knob so benches can run seconds-long versions of experiments the
paper ran for minutes.
"""

from repro.experiments.common import (
    ClusterConfig,
    RunResult,
    build_cluster,
    run_workload,
)

__all__ = ["ClusterConfig", "RunResult", "build_cluster", "run_workload"]
