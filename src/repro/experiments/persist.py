"""Persistence for experiment results.

``run_all`` and ad-hoc sweeps can take tens of minutes; saving
:class:`~repro.experiments.common.RunResult` objects to JSON lets
plotting/analysis happen offline without re-simulating. The format is
stable and self-describing: a ``schema`` tag, the configuration fields
that matter for provenance, the summary statistics, and (optionally) the
raw per-task samples.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Union

from repro.errors import ConfigurationError
from repro.experiments.common import ClusterConfig, RunResult
from repro.metrics.summary import LatencySummary

SCHEMA = "repro.runresult/1"


def result_to_dict(result: RunResult, include_samples: bool = False) -> Dict[str, Any]:
    """Serialize a RunResult (drops live objects, keeps provenance)."""
    config = result.config
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "config": {
            "scheduler": config.scheduler,
            "workers": config.workers,
            "executors_per_worker": config.executors_per_worker,
            "racks": config.racks,
            "seed": config.seed,
            "queue_capacity": config.queue_capacity,
            "jbsq_k": config.jbsq_k,
            "sparrow_schedulers": config.sparrow_schedulers,
            "retrieve_mode": config.retrieve_mode,
            "policy": config.policy.name if config.policy else "fcfs",
            "timeout_factor": config.timeout_factor,
        },
        "duration_ns": result.duration_ns,
        "tasks": {
            "submitted": result.tasks_submitted,
            "completed": result.tasks_completed,
            "unfinished": result.tasks_unfinished,
            "resubmissions": result.resubmissions,
            "bounces": result.bounces,
        },
        "scheduling": asdict(result.scheduling),
        "end_to_end": asdict(result.end_to_end),
        "throughput_tps": result.throughput_tps,
        "recirculation_fraction": result.recirculation_fraction,
        "recirc_dropped": result.recirc_dropped,
        "utilization": result.utilization,
        "placements": result.placements,
    }
    if include_samples:
        payload["samples"] = {
            "scheduling_delays_ns": list(result.scheduling_delays_ns),
            "end_to_end_ns": list(result.end_to_end_ns),
        }
    return payload


def save_result(
    result: RunResult,
    path: Union[str, pathlib.Path],
    include_samples: bool = False,
) -> pathlib.Path:
    """Write one result as JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result_to_dict(result, include_samples), indent=2)
    )
    return path


def load_result(
    path: Union[str, pathlib.Path], expected_schema: str = SCHEMA
) -> Dict[str, Any]:
    """Load a saved result; validates the schema tag.

    Returns the dictionary form (the live simulator objects are gone, so
    a full RunResult cannot be reconstructed — and analysis code only
    needs the numbers). ``expected_schema`` lets sibling result formats
    (``repro.live.results``) share the validated load path.
    """
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("schema") != expected_schema:
        raise ConfigurationError(
            f"{path}: unknown result schema {payload.get('schema')!r}"
        )
    return payload


def summary_from_dict(payload: Dict[str, Any], key: str = "scheduling") -> LatencySummary:
    """Rehydrate a LatencySummary from a saved result."""
    return LatencySummary(**payload[key])
