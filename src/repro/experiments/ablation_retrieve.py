"""Ablation: delayed retrieve-pointer correction vs conditional retrieval.

The paper's queue fixes empty-queue over-reads with delayed pointer
correction (§4.5): every poll on an empty queue inflates retrieve_ptr and
the next job_submission recirculates a repair packet. Our default
deployment instead predicates the retrieve increment on ``r < add_ptr``
(legal because add_ptr sits in an earlier stage — see
``SwitchCircularQueue.dequeue_conditional``), which eliminates those
repairs entirely.

This ablation quantifies the difference: identical task outcomes, but the
delayed variant recirculates repair packets roughly once per
submission-after-idle while the conditional variant stays at the paper's
reported 0.02–0.05 % recirculation level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import ClusterConfig, run_workload
from repro.sim.core import ms
from repro.workloads import fixed, open_loop, rate_for_utilization


@dataclass
class AblationRow:
    retrieve_mode: str
    utilization: float
    recirculation_fraction: float
    p99_us: float
    completed: int
    submitted: int


def run(
    loads: Sequence[float] = (0.3, 0.6, 0.9),
    task_us: float = 250.0,
    duration_ns: int = ms(50),
    seed: int = 0,
) -> List[AblationRow]:
    rows = []
    sampler = fixed(task_us)
    for mode in ("conditional", "delayed"):
        for load in loads:
            config = ClusterConfig(
                scheduler="draconis", retrieve_mode=mode, seed=seed
            )
            rate = rate_for_utilization(
                load, config.total_executors, sampler.mean_ns
            )

            def factory(rngs, _rate=rate):
                return open_loop(
                    rngs.stream("arrivals"), _rate, sampler, duration_ns
                )

            result = run_workload(
                config, factory, duration_ns=duration_ns,
                warmup_ns=duration_ns // 8,
            )
            rows.append(
                AblationRow(
                    retrieve_mode=mode,
                    utilization=load,
                    recirculation_fraction=result.recirculation_fraction,
                    p99_us=result.scheduling.p99_us,
                    completed=result.tasks_completed,
                    submitted=result.tasks_submitted,
                )
            )
    return rows


def print_table(rows: List[AblationRow]) -> None:
    print("Ablation — retrieve-pointer handling")
    print(f"{'mode':>12} {'util':>6} {'recirc%':>9} {'p99':>10} {'done':>12}")
    for row in rows:
        print(
            f"{row.retrieve_mode:>12} {row.utilization:>6.2f} "
            f"{row.recirculation_fraction * 100:>8.3f}% "
            f"{row.p99_us:>9.1f}u {row.completed:>6}/{row.submitted}"
        )


if __name__ == "__main__":
    print_table(run())
