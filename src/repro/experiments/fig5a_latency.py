"""Figure 5a: throughput vs p99 scheduling delay, 500 µs tasks (§8.1).

Paper result: Draconis holds ~4.7 µs p99 until the cluster saturates
(>250 k tps ≈ 90 % utilization); RackSched is ~3× higher,
Draconis-DPDK-Server ~20×, R2P2 ~120× (node-level blocking pins its tail
at the 500 µs service time), Sparrow ~200×; socket-based systems cannot
exceed ~160 k tps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ClusterConfig, RunResult, run_workload
from repro.metrics.summary import PercentileSummary
from repro.sim.core import ms, us
from repro.workloads import fixed, open_loop, rate_for_utilization

TASK_US = 500.0
DEFAULT_LOADS = (0.2, 0.4, 0.6, 0.8, 0.9)

#: systems in the figure; (label, config overrides)
SYSTEMS = (
    ("draconis", dict(scheduler="draconis")),
    ("racksched", dict(scheduler="racksched")),
    ("r2p2-3", dict(scheduler="r2p2", jbsq_k=3)),
    ("draconis-dpdk", dict(scheduler="draconis-dpdk")),
    ("1-sparrow", dict(scheduler="sparrow", sparrow_schedulers=1)),
    ("2-sparrow", dict(scheduler="sparrow", sparrow_schedulers=2, clients=2)),
    ("draconis-socket", dict(scheduler="draconis-socket")),
)


@dataclass
class Fig5aRow:
    system: str
    utilization: float
    offered_tps: float
    p99_us: float
    p50_us: float
    completed: int
    submitted: int
    p999_us: float = float("nan")


def synthetic_factory(sampler, utilization: float, executors: int, horizon_ns: int):
    """Open-loop Poisson factory at a target utilization."""
    rate = rate_for_utilization(utilization, executors, sampler.mean_ns)

    def factory(rngs):
        return open_loop(rngs.stream("arrivals"), rate, sampler, horizon_ns)

    factory.rate_tps = rate  # type: ignore[attr-defined]
    return factory


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    duration_ns: int = ms(80),
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Fig5aRow]:
    """Run the Fig. 5a sweep; returns one row per (system, load)."""
    rows: List[Fig5aRow] = []
    sampler = fixed(TASK_US)
    warmup = duration_ns // 8
    for label, overrides in SYSTEMS:
        if systems is not None and label not in systems:
            continue
        for load in loads:
            config = ClusterConfig(seed=seed, **overrides)
            factory = synthetic_factory(
                sampler, load, config.total_executors, duration_ns
            )
            result = run_workload(
                config, factory, duration_ns=duration_ns, warmup_ns=warmup
            )
            tail = PercentileSummary.from_ns(result.scheduling_delays_ns)
            rows.append(
                Fig5aRow(
                    system=label,
                    utilization=load,
                    offered_tps=factory.rate_tps,
                    p99_us=tail.p99_us,
                    p50_us=tail.p50_us,
                    completed=result.tasks_completed,
                    submitted=result.tasks_submitted,
                    p999_us=tail.p999_us,
                )
            )
    return rows


def print_table(rows: List[Fig5aRow]) -> None:
    print("Figure 5a — throughput vs p99 scheduling delay (500 us tasks)")
    print(f"{'system':>16} {'util':>5} {'offered':>10} {'p50':>10} "
          f"{'p99':>12} {'p999':>12}")
    for row in rows:
        print(
            f"{row.system:>16} {row.utilization:>5.2f} "
            f"{row.offered_tps:>9.0f}t "
            f"{row.p50_us:>9.1f}u {row.p99_us:>11.1f}u {row.p999_us:>11.1f}u"
        )


def paper_comparison(rows: List[Fig5aRow]) -> Dict[str, float]:
    """p99 ratios vs Draconis at moderate load (the paper's 3/20/120/200×)."""
    by_system: Dict[str, List[Fig5aRow]] = {}
    for row in rows:
        by_system.setdefault(row.system, []).append(row)
    mid = {
        system: min(rs, key=lambda r: abs(r.utilization - 0.6))
        for system, rs in by_system.items()
    }
    if "draconis" not in mid:
        return {}
    base = mid["draconis"].p99_us
    return {
        system: row.p99_us / base
        for system, row in mid.items()
        if system != "draconis" and base > 0
    }


def chart(rows: List[Fig5aRow]) -> str:
    """Render the figure as a log-y ASCII chart (paper Fig. 5a)."""
    from repro.viz import line_chart

    series: Dict[str, List] = {}
    for row in rows:
        series.setdefault(row.system, []).append(
            (row.offered_tps, row.p99_us)
        )
    return line_chart(
        series,
        log_y=True,
        x_label="offered tps",
        y_label="p99 us",
        title="Figure 5a - p99 scheduling delay vs load (log y)",
    )


if __name__ == "__main__":
    table = run()
    print_table(table)
    print()
    print(chart(table))
    print()
    print("p99 ratio vs Draconis at ~60% load (paper: RackSched 3x, "
          "DPDK 20x, R2P2 120x, Sparrow 200x):")
    for system, ratio in sorted(paper_comparison(table).items()):
        print(f"  {system:>16}: {ratio:7.1f}x")
