"""Run the full evaluation suite and print every table.

Usage::

    python -m repro.experiments.run_all [--scale {smoke,report}]

``smoke`` finishes in ~2 minutes; ``report`` (default) is the scale used
to produce EXPERIMENTS.md (~20–30 minutes).
"""

from __future__ import annotations

import argparse
import time

from repro.experiments.parallel_runner import add_jobs_argument
from repro.experiments import (
    ablation_retrieve,
    fault_tolerance,
    fig5a_latency,
    fig5b_throughput,
    fig6_synthetic,
    fig7_recirculation,
    fig8_jbsq,
    fig9_google,
    fig10_locality,
    fig11_resources,
    fig12_priority,
    fig13_gettask,
    scalability,
    table_switch_resources,
)
from repro.sim.core import Simulator, ms

SCALES = {
    "smoke": dict(
        fig5a=dict(loads=(0.4, 0.8), duration_ns=ms(20)),
        fig5b=dict(executor_counts=(16, 96), duration_ns=ms(6)),
        fig6=dict(loads=(0.5, 0.9), duration_ns=ms(20),
                  workload_names=("250us", "bimodal")),
        fig7=dict(loads=(0.93,), duration_ns=ms(25)),
        fig8=dict(loads=(0.5, 0.93), duration_ns=ms(25)),
        fig9=dict(duration_ns=ms(40), mean_rate_tps=120_000.0),
        fig10=dict(duration_ns=ms(30)),
        fig11=dict(phase_ns=ms(8)),
        fig12=dict(duration_ns=ms(150), mean_task_ns=ms(2),
                   workers=4, executors_per_worker=8),
        fig13=dict(duration_ns=ms(10)),
        ablation=dict(loads=(0.5,), duration_ns=ms(20)),
        chaos=dict(seeds=(0, 1), duration_ns=ms(12), drain_ns=ms(20)),
    ),
    "report": dict(
        fig5a=dict(loads=(0.2, 0.4, 0.6, 0.8, 0.9), duration_ns=ms(60)),
        fig5b=dict(executor_counts=(16, 48, 96, 160, 208), duration_ns=ms(10)),
        fig6=dict(loads=(0.3, 0.5, 0.7, 0.9), duration_ns=ms(50)),
        fig7=dict(duration_ns=ms(60)),
        fig8=dict(duration_ns=ms(50)),
        fig9=dict(duration_ns=ms(80), mean_rate_tps=150_000.0),
        fig10=dict(duration_ns=ms(80)),
        fig11=dict(phase_ns=ms(15)),
        fig12=dict(duration_ns=ms(400), mean_task_ns=ms(2),
                   workers=4, executors_per_worker=8),
        fig13=dict(duration_ns=ms(30)),
        ablation=dict(duration_ns=ms(50)),
        chaos=dict(seeds=(0, 1, 2, 3, 4), duration_ns=ms(40), drain_ns=ms(40)),
    ),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="report"
    )
    add_jobs_argument(parser)
    args = parser.parse_args()
    knobs = SCALES[args.scale]
    start = time.time()
    events_start = Simulator.global_events_processed()

    def section(name: str, body) -> None:
        """Run one experiment, then report its wall time and events/sec."""
        elapsed = time.time() - start
        print(f"\n{'=' * 72}\n{name}  [t+{elapsed:.0f}s]\n{'=' * 72}", flush=True)
        events_before = Simulator.global_events_processed()
        wall_before = time.perf_counter()
        body()
        wall = time.perf_counter() - wall_before
        events = Simulator.global_events_processed() - events_before
        rate = f", {events / wall:,.0f} events/s" if wall > 0 and events else ""
        print(f"[{wall:.1f}s wall, {events:,} sim events{rate}]", flush=True)

    def fig5a_section() -> None:
        rows = fig5a_latency.run(**knobs["fig5a"])
        fig5a_latency.print_table(rows)
        print("\np99 ratio vs Draconis at ~60% load:")
        for system, ratio in sorted(
            fig5a_latency.paper_comparison(rows).items()
        ):
            print(f"  {system:>16}: {ratio:7.1f}x")

    def fig13_section() -> None:
        rows = fig13_gettask.run(**knobs["fig13"])
        fig13_gettask.print_table(rows)
        print(f"median spread: {fig13_gettask.level_spread(rows):.2f} us")

    section("Figure 5a — throughput vs p99 (500 us)", fig5a_section)
    section(
        "Figure 5b — no-op scheduling throughput",
        lambda: fig5b_throughput.print_table(
            fig5b_throughput.run(**knobs["fig5b"])
        ),
    )
    section(
        "Figure 6 — synthetic suite",
        lambda: fig6_synthetic.print_table(fig6_synthetic.run(**knobs["fig6"])),
    )
    section(
        "Figure 7 — recirculation and drops",
        lambda: fig7_recirculation.print_table(
            fig7_recirculation.run(**knobs["fig7"])
        ),
    )
    section(
        "Figure 8 — JBSQ queue size",
        lambda: fig8_jbsq.print_table(fig8_jbsq.run(**knobs["fig8"])),
    )
    section(
        "Figure 9 — google-like trace",
        lambda: fig9_google.print_table(fig9_google.run(**knobs["fig9"])),
    )
    section(
        "Figure 10 — locality-aware vs FCFS",
        lambda: fig10_locality.print_table(
            fig10_locality.run(**knobs["fig10"])
        ),
    )
    section(
        "Figure 11 — resource phases",
        lambda: fig11_resources.print_table(
            fig11_resources.run(**knobs["fig11"])
        ),
    )
    section(
        "Figure 12 — priority queueing delays",
        lambda: fig12_priority.print_table(
            fig12_priority.run(**knobs["fig12"])
        ),
    )
    section("Figure 13 — get_task() ladder", fig13_section)
    section(
        "§7 — switch resource budget",
        lambda: table_switch_resources.print_table(
            table_switch_resources.run()
        ),
    )
    section("§8.2 — scalability", scalability.print_report)
    section(
        "Ablation — retrieve-pointer handling",
        lambda: ablation_retrieve.print_table(
            ablation_retrieve.run(**knobs["ablation"])
        ),
    )
    section(
        "§3.3 — fault tolerance (chaos sweep)",
        lambda: fault_tolerance.print_table(
            fault_tolerance.run(**knobs["chaos"], jobs=args.jobs)
        ),
    )

    total_wall = time.time() - start
    total_events = Simulator.global_events_processed() - events_start
    print(
        f"\nTOTAL {total_wall:.0f}s, {total_events:,} sim events "
        f"({total_events / total_wall:,.0f} events/s)",
        flush=True,
    )


if __name__ == "__main__":
    main()
