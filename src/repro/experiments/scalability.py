"""§8.2 scalability: Draconis supports clusters of millions of cores.

Two parts:

1. the analytic packet-budget sweep (:mod:`repro.analysis.scalability`) —
   at 500 µs tasks the 4.7 Bpps ASIC sustains over a million cores;
2. a discrete-event spot check at simulatable scales: throughput must
   track offered load (the scheduler never the bottleneck) while the
   analytic model says the point is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.scalability import (
    ScalabilityPoint,
    max_cluster_cores,
    scalability_sweep,
)
from repro.experiments.common import ClusterConfig, run_workload
from repro.sim.core import ms, us
from repro.switchsim.resources import TOFINO1
from repro.workloads import fixed, open_loop, rate_for_utilization


@dataclass
class SpotCheck:
    cores: int
    offered_tps: float
    achieved_tps: float

    @property
    def efficiency(self) -> float:
        return self.achieved_tps / self.offered_tps if self.offered_tps else 0.0


def run_analytic(
    core_counts: Sequence[int] = (10_000, 100_000, 500_000, 1_000_000, 2_000_000),
    task_us: float = 500.0,
) -> List[ScalabilityPoint]:
    return scalability_sweep(core_counts, task_duration_ns=us(task_us))


def run_spot_checks(
    core_counts: Sequence[int] = (64, 160, 320),
    task_us: float = 500.0,
    utilization: float = 0.8,
    duration_ns: int = ms(50),
    seed: int = 0,
) -> List[SpotCheck]:
    checks = []
    sampler = fixed(task_us)
    for cores in core_counts:
        workers = max(1, cores // 16)
        config = ClusterConfig(
            scheduler="draconis",
            workers=workers,
            executors_per_worker=cores // workers,
            seed=seed,
        )
        rate = rate_for_utilization(
            utilization, config.total_executors, sampler.mean_ns
        )

        def factory(rngs, _rate=rate):
            return open_loop(rngs.stream("arrivals"), _rate, sampler, duration_ns)

        result = run_workload(
            config, factory, duration_ns=duration_ns, warmup_ns=duration_ns // 8
        )
        checks.append(
            SpotCheck(
                cores=config.total_executors,
                offered_tps=rate,
                achieved_tps=result.throughput_tps,
            )
        )
    return checks


def print_report() -> None:
    ceiling = max_cluster_cores(task_duration_ns=us(500), model=TOFINO1)
    print("§8.2 — scalability")
    print(f"analytic ceiling at 500 us tasks: {ceiling:,} cores "
          "(paper: 'millions of cores')")
    print(f"\n{'cores':>10} {'task rate':>14} {'packet load':>12} {'feasible':>9}")
    for point in run_analytic():
        print(
            f"{point.cores:>10,} {point.task_rate_tps / 1e6:>11.1f}Mt "
            f"{point.switch_packet_load * 100:>11.2f}% "
            f"{'yes' if point.feasible else 'no':>9}"
        )
    print("\nDES spot checks (throughput must track offered load):")
    print(f"{'cores':>8} {'offered':>12} {'achieved':>12} {'efficiency':>11}")
    for check in run_spot_checks():
        print(
            f"{check.cores:>8} {check.offered_tps / 1e3:>9.1f}kt "
            f"{check.achieved_tps / 1e3:>9.1f}kt {check.efficiency:>10.1%}"
        )


if __name__ == "__main__":
    print_report()
