"""Figure 9: scheduling-delay CDF on the (synthetic) Google trace (§8.4).

Paper result (accelerated Google trace, 500 µs mean): Draconis median
4.18 µs; R2P2-5 is the best R2P2 variant at 5.2 µs (R2P2-3/7/9 are
60–160 µs, R2P2-1 drops 6.3 % of tasks and is excluded); RackSched median
5.83 µs; Draconis-DPDK-Server collapses to seconds. All systems grow long
tails from the trace's burstiness.

We use the statistically-matched synthetic trace
(:mod:`repro.workloads.google_like`; see DESIGN.md for the substitution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments import calibration
from repro.experiments.common import ClusterConfig, run_workload
from repro.metrics.summary import PercentileSummary, cdf_points, percentile
from repro.sim.core import ms, us
from repro.workloads import GoogleTraceConfig, google_like

SYSTEMS = (
    ("draconis", dict(scheduler="draconis")),
    ("racksched", dict(scheduler="racksched")),
    ("r2p2-1", dict(scheduler="r2p2", jbsq_k=1)),
    ("r2p2-3", dict(scheduler="r2p2", jbsq_k=3)),
    ("r2p2-5", dict(scheduler="r2p2", jbsq_k=5)),
    ("r2p2-7", dict(scheduler="r2p2", jbsq_k=7)),
    ("r2p2-9", dict(scheduler="r2p2", jbsq_k=9)),
    ("draconis-dpdk", dict(scheduler="draconis-dpdk")),
)


@dataclass
class Fig9Row:
    system: str
    p50_us: float
    p95_us: float
    p99_us: float
    task_drop_fraction: float
    cdf: List[Tuple[float, float]]
    p999_us: float = float("nan")


def run(
    duration_ns: int = ms(120),
    mean_rate_tps: float = 200_000.0,
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Fig9Row]:
    rows: List[Fig9Row] = []
    warmup = duration_ns // 8
    trace_config = GoogleTraceConfig(
        mean_duration_ns=us(500),
        target_rate_tps=mean_rate_tps,
        horizon_ns=duration_ns,
    )
    for label, overrides in SYSTEMS:
        if systems is not None and label not in systems:
            continue
        config = ClusterConfig(
            seed=seed,
            timeout_factor=calibration.CLIENT_TIMEOUT_FACTOR,
            queue_capacity=1 << 16,
            **overrides,
        )

        def factory(rngs):
            return google_like(rngs.stream("google-trace"), trace_config)

        result = run_workload(
            config, factory, duration_ns=duration_ns, warmup_ns=warmup,
            drain_ns=ms(20),
        )
        delays = result.scheduling_delays_ns
        tail = PercentileSummary.from_ns(delays)
        rows.append(
            Fig9Row(
                system=label,
                p50_us=tail.p50_us,
                p95_us=percentile(delays, 95) / 1e3,
                p99_us=tail.p99_us,
                task_drop_fraction=(
                    result.resubmissions / max(1, result.tasks_submitted)
                ),
                cdf=cdf_points(delays, points=100),
                p999_us=tail.p999_us,
            )
        )
    return rows


def print_table(rows: List[Fig9Row]) -> None:
    print("Figure 9 — scheduling delay on the google-like trace (500 us mean)")
    print(f"{'system':>16} {'p50':>10} {'p95':>10} {'p99':>12} "
          f"{'p999':>12} {'drops':>8}")
    for row in rows:
        print(
            f"{row.system:>16} {row.p50_us:>9.2f}u {row.p95_us:>9.1f}u "
            f"{row.p99_us:>11.1f}u {row.p999_us:>11.1f}u "
            f"{row.task_drop_fraction * 100:>7.2f}%"
        )


def chart(rows: List[Fig9Row]) -> str:
    """Render the CDFs as an ASCII chart (paper Fig. 9)."""
    from repro.viz import cdf_chart

    return cdf_chart(
        {row.system: row.cdf for row in rows},
        title="Figure 9 - scheduling delay CDF (google-like trace)",
    )


if __name__ == "__main__":
    table = run()
    print_table(table)
    print()
    print(chart(table))
