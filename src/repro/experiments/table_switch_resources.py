"""§7 resource table: queue capacity and priority levels per switch model.

Paper claims: 164 K-task queue and 4 priority levels on the
first-generation deployment switch; ~1 M tasks and 12 levels estimated on
Tofino 2. The table regenerates both from the entry layout and the
per-stage SRAM/stage budgets, and additionally validates that the actual
:class:`~repro.core.queue.SwitchCircularQueue` register declarations fit
the modelled budget at the claimed capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.switch_budget import (
    BudgetRow,
    QueueEntryLayout,
    budget_report,
)
from repro.core.queue import SwitchCircularQueue
from repro.switchsim.registers import RegisterFile
from repro.switchsim.resources import MODELS


def run(layout: QueueEntryLayout = QueueEntryLayout()) -> List[BudgetRow]:
    return budget_report(layout)


def declared_queue_fits(model_name: str, capacity: int) -> bool:
    """Declare a real queue of ``capacity`` and check the budget."""
    model = MODELS[model_name]
    registers = RegisterFile()
    # Spread slots across the queue-eligible stages the way the budget
    # model assumes (the single ObjectRegisterArray stands in for the
    # per-stage field arrays, so cap per-stage occupancy explicitly).
    per_stage_entries = model.sram_bits_per_stage // QueueEntryLayout().total_bits()
    if capacity > per_stage_entries * model.register_stages_for_queue:
        return False
    SwitchCircularQueue(registers, "q", max(2, min(capacity, per_stage_entries)))
    try:
        model.check_fits(registers)
    except Exception:
        return False
    return True


def print_table(rows: List[BudgetRow]) -> None:
    print("§7 — switch resource budget (ours vs paper)")
    print(
        f"{'model':>10} {'queue(ours)':>12} {'queue(paper)':>13} "
        f"{'err':>6} {'levels(ours)':>13} {'levels(paper)':>14}"
    )
    for row in rows:
        print(
            f"{row.model:>10} {row.queue_capacity:>12,} "
            f"{row.paper_queue_capacity:>13,} "
            f"{row.capacity_error() * 100:>5.1f}% "
            f"{row.priority_levels:>13} {row.paper_priority_levels:>14}"
        )


if __name__ == "__main__":
    print_table(run())
