"""RTT sensitivity of the pull model (paper §3).

"Draconis presents a good trade off by eliminating node-level blocking
worth tens to hundreds of microseconds, at the cost of a single RTT
worth of CPU efficiency. Modern network advances promise
sub-microsecond RTTs which will further reduce this overhead."

This experiment sweeps the host↔switch propagation delay and measures
both sides of that trade: the efficiency loss (executor idle time per
pulled task, §3.1's "<3 % at 100 µs tasks") and the scheduling-delay
floor. Both must scale ~linearly with the RTT and vanish as the network
approaches the sub-microsecond regime the paper anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster import Client, ClientConfig, Worker, WorkerSpec
from repro.core import DraconisProgram
from repro.metrics import MetricsCollector
from repro.metrics.summary import percentile
from repro.net import StarTopology
from repro.sim.core import Simulator, ms, us
from repro.sim.rng import RngStreams
from repro.switchsim import ProgrammableSwitch
from repro.workloads import fixed, open_loop, rate_for_utilization

DEFAULT_PROPAGATIONS_NS = (50, 150, 500, 1_000, 2_000)


@dataclass
class RttRow:
    propagation_ns: int
    pull_rtt_p50_us: float          # one get_task round trip
    efficiency_loss: float          # idle-while-pulling / total executor time
    sched_delay_p50_us: float


def run(
    propagations_ns: Sequence[int] = DEFAULT_PROPAGATIONS_NS,
    task_us: float = 100.0,
    utilization: float = 0.85,
    workers: int = 4,
    executors_per_worker: int = 8,
    duration_ns: int = ms(40),
    seed: int = 0,
) -> List[RttRow]:
    rows: List[RttRow] = []
    for propagation in propagations_ns:
        sim = Simulator()
        program = DraconisProgram(queue_capacity=4096)
        switch = ProgrammableSwitch(sim, program)
        topology = StarTopology(sim, switch, propagation_ns=propagation)
        collector = MetricsCollector()
        from repro.cluster.executor import ExecutorConfig

        worker_objs = [
            Worker(
                sim,
                topology,
                WorkerSpec(node_id=n, executors=executors_per_worker),
                scheduler=switch.service_address,
                collector=collector,
                config=ExecutorConfig(record_pull_rtts=True),
                executor_id_base=n * executors_per_worker,
            )
            for n in range(workers)
        ]
        rngs = RngStreams(seed)
        sampler = fixed(task_us)
        rate = rate_for_utilization(
            utilization, workers * executors_per_worker, sampler.mean_ns
        )
        Client(
            sim,
            topology.add_host("client0"),
            uid=0,
            scheduler=switch.service_address,
            workload=open_loop(
                rngs.stream("arrivals"), rate, sampler, duration_ns
            ),
            collector=collector,
            config=ClientConfig(),
        )
        sim.run(until=duration_ns + ms(5))

        pull_rtts: List[int] = []
        pull_idle = busy = 0
        for worker in worker_objs:
            for executor in worker.executors:
                if executor.stats.pull_rtts_ns:
                    pull_rtts.extend(executor.stats.pull_rtts_ns)
                pull_idle += executor.stats.idle_pull_time_ns
                busy += executor.stats.busy_time_ns
        rows.append(
            RttRow(
                propagation_ns=propagation,
                pull_rtt_p50_us=percentile(pull_rtts, 50) / 1e3,
                efficiency_loss=pull_idle / max(1, pull_idle + busy),
                sched_delay_p50_us=percentile(
                    collector.scheduling_delays(), 50
                )
                / 1e3,
            )
        )
    return rows


def print_table(rows: List[RttRow]) -> None:
    print("RTT sensitivity of the pull model (100 us tasks, 85% load)")
    print(
        f"{'propagation':>12} {'pull RTT p50':>13} {'efficiency loss':>16} "
        f"{'sched p50':>10}"
    )
    for row in rows:
        print(
            f"{row.propagation_ns:>10}ns {row.pull_rtt_p50_us:>11.2f}us "
            f"{row.efficiency_loss:>15.2%} {row.sched_delay_p50_us:>8.2f}us"
        )


if __name__ == "__main__":
    print_table(run())
