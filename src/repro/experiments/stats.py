"""Seed sweeps: run-to-run variance of experiment results.

The paper reports the average of 10 runs with a standard deviation under
5 % (§8). This module repeats any ``run_workload`` configuration across
seeds and aggregates the metrics, so the reproduction can make the same
statistical statement (and the test suite enforces it for the headline
configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence

import numpy as np

from repro.cluster.task import SubmitEvent
from repro.errors import ConfigurationError
from repro.experiments.common import ClusterConfig, RunResult, run_workload
from repro.metrics.summary import latency_row
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class MetricStats:
    """Mean / stddev / coefficient of variation across seeds."""

    name: str
    mean: float
    std: float
    values: tuple

    @property
    def cv(self) -> float:
        """Relative stddev; the paper's "<5 %" statement is about this."""
        return self.std / self.mean if self.mean else float("inf")

    def row(self) -> str:
        stats = latency_row(
            None, [("mean", self.mean), ("std", self.std)], unit="",
            value_width=12,
        )
        return f"{self.name:<18} {stats}  cv={self.cv:>6.1%}"


@dataclass
class SweepResult:
    """All per-seed results plus aggregated metrics."""

    runs: List[RunResult]
    p50_us: MetricStats
    p99_us: MetricStats
    throughput_tps: MetricStats

    def rows(self) -> List[str]:
        return [self.p50_us.row(), self.p99_us.row(), self.throughput_tps.row()]


def _stats(name: str, values: Sequence[float]) -> MetricStats:
    array = np.asarray(values, dtype=np.float64)
    return MetricStats(
        name=name,
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if len(array) > 1 else 0.0,
        values=tuple(float(v) for v in array),
    )


def seed_sweep(
    config: ClusterConfig,
    workload_factory: Callable[[RngStreams], Iterator[SubmitEvent]],
    duration_ns: int,
    seeds: Sequence[int],
    warmup_ns: int = 0,
) -> SweepResult:
    """Repeat one configuration across ``seeds`` and aggregate.

    The config's ``seed`` field is overridden per run; everything else —
    including the workload factory, which draws from the per-seed RNG
    streams — is identical.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    runs: List[RunResult] = []
    for seed in seeds:
        from dataclasses import replace

        seeded = replace(config, seed=seed)
        runs.append(
            run_workload(
                seeded, workload_factory, duration_ns=duration_ns,
                warmup_ns=warmup_ns,
            )
        )
    return SweepResult(
        runs=runs,
        p50_us=_stats("p50_us", [r.scheduling.p50_us for r in runs]),
        p99_us=_stats("p99_us", [r.scheduling.p99_us for r in runs]),
        throughput_tps=_stats(
            "throughput_tps", [r.throughput_tps for r in runs]
        ),
    )
