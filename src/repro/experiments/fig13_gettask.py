"""Figure 13: get_task() delay across priority levels (§8.7).

With all queues in the same stages, a task_request walks the priority
ladder by recirculation: a task at level L costs L−1 recirculations.
Paper result: median and 90th-percentile get_task() latencies differ by
only 1–2 µs between levels — recirculation overhead is negligible.

We measure each level in isolation: a workload whose tasks all carry
priority L, executors recording their request→assignment round trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster.worker import Worker
from repro.core.policies import PriorityPolicy
from repro.experiments.common import ClusterConfig, build_cluster
from repro.metrics.summary import percentile
from repro.sim.core import ms, us
from repro.sim.rng import RngStreams
from repro.workloads import fixed, open_loop, rate_for_utilization


@dataclass
class Fig13Row:
    priority: int
    pulls: int
    p50_us: float
    p90_us: float


def run(
    levels: int = 4,
    duration_ns: int = ms(40),
    task_us: float = 100.0,
    utilization: float = 0.6,
    workers: int = 4,
    executors_per_worker: int = 8,
    seed: int = 0,
    queues_in_stages: bool = False,
) -> List[Fig13Row]:
    """``queues_in_stages=True`` runs the Tofino 2 layout (§8.7): queues
    in separate stages, no ladder recirculation — the per-level spread
    collapses to ~0."""
    rows: List[Fig13Row] = []
    for level in range(1, levels + 1):
        config = ClusterConfig(
            scheduler="draconis",
            workers=workers,
            executors_per_worker=executors_per_worker,
            seed=seed,
            policy=PriorityPolicy(levels=levels),
            record_pull_rtts=True,
            queues_in_stages=queues_in_stages,
        )
        sampler = fixed(task_us)
        rate = rate_for_utilization(
            utilization, config.total_executors, sampler.mean_ns
        )
        rngs = RngStreams(seed)
        events = list(
            open_loop(
                rngs.stream("arrivals"),
                rate,
                sampler,
                duration_ns,
                tprops_for=lambda _rng, _dur, _level=level: _level,
            )
        )
        handles = build_cluster(config, [events], rngs=rngs)
        handles.sim.run(until=duration_ns + ms(2))
        rtts: List[int] = []
        for worker in handles.workers:
            assert isinstance(worker, Worker)
            for executor in worker.executors:
                if executor.stats.pull_rtts_ns:
                    rtts.extend(executor.stats.pull_rtts_ns)
        rows.append(
            Fig13Row(
                priority=level,
                pulls=len(rtts),
                p50_us=percentile(rtts, 50) / 1e3,
                p90_us=percentile(rtts, 90) / 1e3,
            )
        )
    return rows


def print_table(rows: List[Fig13Row]) -> None:
    print("Figure 13 — get_task() delay by priority level")
    print(f"{'level':>6} {'pulls':>8} {'p50':>10} {'p90':>10}")
    for row in rows:
        print(
            f"{row.priority:>6} {row.pulls:>8} "
            f"{row.p50_us:>9.2f}u {row.p90_us:>9.2f}u"
        )


def level_spread(rows: Sequence[Fig13Row]) -> float:
    """Max difference in median get_task() across levels (paper: 1–2 µs)."""
    medians = [row.p50_us for row in rows]
    return max(medians) - min(medians)


if __name__ == "__main__":
    table = run()
    print_table(table)
    print(f"\nmedian spread across levels: {level_spread(table):.2f} us "
          "(paper: 1-2 us)")
