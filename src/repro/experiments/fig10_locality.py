"""Figure 10: locality-aware scheduling vs FCFS (§8.5).

Setup (paper): 3 racks, 16 executors per node, intra-rack storage access
20 µs and inter-rack 100 µs, 100 µs tasks whose (unreplicated) data lives
on exactly one node. With rack_start_limit=3 and global_start_limit=9 the
paper places 27.66 % of tasks node-local and 38.82 % rack-local (FCFS:
10.03 % / 24.05 %), and Draconis-Locality's median end-to-end latency is
131.35 µs vs 203.87 µs for FCFS (~2× better at the 66th percentile,
crossing over at the high tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.executor import LocalityCostModel
from repro.core.policies import LocalityPolicy
from repro.experiments.common import ClusterConfig, run_workload
from repro.metrics.summary import cdf_points, percentile
from repro.sim.core import ms, us
from repro.workloads import locality_workload, rate_for_utilization


@dataclass
class Fig10Row:
    policy: str
    node_local: float
    rack_local: float
    remote: float
    e2e_p50_us: float
    e2e_p66_us: float
    e2e_p95_us: float
    cdf: List[Tuple[float, float]]


def run(
    duration_ns: int = ms(80),
    utilization: float = 0.42,
    workers: int = 9,
    racks: int = 3,
    rack_start_limit: int = 3,
    global_start_limit: int = 9,
    seed: int = 0,
    policies: Optional[List[str]] = None,
) -> List[Fig10Row]:
    rows: List[Fig10Row] = []
    warmup = duration_ns // 8
    for label in policies or ["locality", "fcfs"]:
        base = ClusterConfig(workers=workers, racks=racks, seed=seed)
        node_racks = base.node_racks()
        cost_model = LocalityCostModel(node_racks=node_racks)
        policy = (
            LocalityPolicy(
                node_racks,
                rack_start_limit=rack_start_limit,
                global_start_limit=global_start_limit,
            )
            if label == "locality"
            else None
        )
        config = ClusterConfig(
            workers=workers,
            racks=racks,
            seed=seed,
            policy=policy,
            locality_cost=cost_model,
        )
        # Executors spend duration + data-access penalty per task, so the
        # utilization knob is defined against the *pure* 100 µs execution
        # time; the default 0.42 keeps the FCFS run (whose effective
        # service time is ~180 µs with mostly-remote access) below
        # saturation, the regime Fig. 10 plots.
        rate = rate_for_utilization(
            utilization, config.total_executors, us(100)
        )

        def factory(rngs, _rate=rate):
            return locality_workload(
                rngs.stream("locality"),
                node_ids=list(range(workers)),
                rate_tps=_rate,
                horizon_ns=duration_ns,
            )

        result = run_workload(
            config, factory, duration_ns=duration_ns, warmup_ns=warmup
        )
        placements = result.placements
        rows.append(
            Fig10Row(
                policy=label,
                node_local=placements.get("node", 0.0),
                rack_local=placements.get("rack", 0.0),
                remote=placements.get("remote", 0.0),
                e2e_p50_us=result.end_to_end.p50_us,
                e2e_p66_us=percentile(result.end_to_end_ns, 66) / 1e3,
                e2e_p95_us=result.end_to_end.p95_us,
                cdf=cdf_points(result.end_to_end_ns, points=100),
            )
        )
    return rows


def limit_sweep(
    limits: Optional[List[Tuple[int, int]]] = None,
    duration_ns: int = ms(40),
    seed: int = 0,
) -> Dict[Tuple[int, int], Fig10Row]:
    """Sweep (rack_start_limit, global_start_limit) configurations.

    Paper §8.5: "We experimented with other values for these limits and
    noticed that at least 49% of tasks are scheduled on the target node
    or rack in all configurations."
    """
    limits = limits or [(1, 3), (3, 9), (5, 15), (2, 4)]
    results: Dict[Tuple[int, int], Fig10Row] = {}
    for rack_limit, global_limit in limits:
        rows = run(
            duration_ns=duration_ns,
            rack_start_limit=rack_limit,
            global_start_limit=global_limit,
            seed=seed,
            policies=["locality"],
        )
        results[(rack_limit, global_limit)] = rows[0]
    return results


def print_table(rows: List[Fig10Row]) -> None:
    print("Figure 10 — locality-aware vs FCFS (100 us tasks, 3 racks)")
    print(
        f"{'policy':>10} {'node%':>7} {'rack%':>7} {'remote%':>8} "
        f"{'e2e p50':>10} {'e2e p95':>10}"
    )
    for row in rows:
        print(
            f"{row.policy:>10} {row.node_local * 100:>6.1f}% "
            f"{row.rack_local * 100:>6.1f}% {row.remote * 100:>7.1f}% "
            f"{row.e2e_p50_us:>9.1f}u {row.e2e_p95_us:>9.1f}u"
        )


if __name__ == "__main__":
    print_table(run())
