"""Multiprocessing fan-out for multi-seed experiment sweeps.

Every experiment cell in this repo (one seed of one arm) builds its own
:class:`~repro.sim.core.Simulator` and its own ``RngStreams(seed)``, so
cells are embarrassingly parallel and bit-deterministic regardless of
which process runs them. :func:`parallel_map` exploits that: it fans a
list of cells out over a ``fork`` process pool, preserves input order in
the results, and folds each worker's simulated-event count back into
:meth:`Simulator.credit_global_events` so the harness-level events/sec
totals printed by ``run_all`` remain truthful.

Serial execution is the fallback, not an error, whenever parallelism is
impossible or pointless:

* ``jobs=1`` (or a single cell) — nothing to fan out;
* the platform has no ``fork`` start method (``spawn`` would re-import
  the world per worker and cannot share an attached telemetry bus);
* the caller attached an in-process observer (``obs``) — callbacks
  cannot cross a process boundary, so the sweep degrades to serial
  rather than silently dropping telemetry.

Usage::

    from repro.experiments.parallel_runner import parallel_map

    def _cell(item):          # module-level => picklable
        seed, kind = item
        return run_chaos(seed, kind=kind)

    results = parallel_map(_cell, [(0, "mixed"), (1, "mixed")], jobs=4)
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.core import Simulator

__all__ = ["parallel_map", "resolve_jobs", "fork_available"]


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int], cells: int) -> int:
    """Effective worker count for ``cells`` work items.

    ``None`` means "use the machine": one worker per core, capped at the
    number of cells. Explicit values are clamped to ``[1, cells]`` so a
    caller asking for 32 workers on a 4-cell sweep doesn't pay 28 idle
    fork/teardown round-trips.
    """
    if cells <= 0:
        return 1
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, cells))


class _ByName:
    """Pickle-by-name shim for cell functions defined in ``__main__``.

    ``python -m repro <cmd>`` (runpy) executes the experiment module
    under the name ``__main__`` while its canonical name stays in
    ``__spec__``; pickling the cell function by reference would then
    look it up on the dispatcher's ``__main__`` and fail. Shipping the
    (module, qualname) pair instead lets each worker import the
    canonical module and resolve the function locally.
    """

    def __init__(self, module: str, qualname: str) -> None:
        self.module = module
        self.qualname = qualname

    def __call__(self, item: Any) -> Any:
        import importlib

        target: Any = importlib.import_module(self.module)
        for part in self.qualname.split("."):
            target = getattr(target, part)
        return target(item)


def _picklable(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
    if getattr(fn, "__module__", None) != "__main__":
        return fn
    spec = getattr(fn, "__globals__", {}).get("__spec__")
    name = getattr(spec, "name", None)
    if name and name != "__main__":
        return _ByName(name, fn.__qualname__)
    return fn


def _invoke(payload: Tuple[Callable[[Any], Any], Any]) -> Tuple[Any, int]:
    """Worker entry: run one cell, return (result, event delta).

    Module-level so the pool can pickle it. The delta is measured around
    the cell (not process lifetime) because a forked worker inherits the
    parent's ``_global_events`` snapshot and may run several cells.
    """
    fn, item = payload
    before = Simulator.global_events_processed()
    result = fn(item)
    return result, Simulator.global_events_processed() - before


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: Optional[int] = None,
    serial: bool = False,
) -> List[Any]:
    """Order-preserving map of ``fn`` over ``items``, forked across cores.

    Args:
        fn: a picklable callable (module-level function, or a
            ``functools.partial`` of one) taking one item.
        items: work items; must be picklable when the pool engages.
        jobs: worker processes; ``None`` = one per core, ``1`` = serial.
        serial: force in-process execution (e.g. an attached observer).

    Returns:
        ``[fn(item) for item in items]`` — identical to the serial result
        in content *and order*; only wall-clock changes.
    """
    cells = list(items)
    workers = resolve_jobs(jobs, len(cells))
    if serial or workers <= 1 or len(cells) <= 1 or not fork_available():
        return [fn(item) for item in cells]
    fn = _picklable(fn)
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=workers) as pool:
        pairs = pool.map(_invoke, [(fn, item) for item in cells])
    Simulator.credit_global_events(sum(delta for _, delta in pairs))
    return [result for result, _ in pairs]


def add_jobs_argument(parser, default: Optional[int] = None) -> None:
    """Attach the standard ``--jobs`` flag to an experiment CLI."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=default,
        help="worker processes for the sweep (default: one per core; "
        "1 disables the pool)",
    )
