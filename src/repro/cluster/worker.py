"""Worker nodes hosting executors (paper §3, testbed §8).

A :class:`Worker` is a host plus a set of executors (the paper runs 16 per
node). Node identity (id, rack, resource bitmap) is shared by all of the
node's executors — resources such as GPUs belong to nodes, not cores
(§5.2), and data locality is a node property (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cluster.executor import Executor, ExecutorConfig
from repro.metrics.collector import MetricsCollector
from repro.net.packet import Address
from repro.net.topology import StarTopology
from repro.sim.core import Simulator


@dataclass(frozen=True)
class WorkerSpec:
    """Static description of one worker node."""

    node_id: int
    rack_id: int = 0
    executors: int = 16
    resources: int = 0

    @property
    def name(self) -> str:
        return f"worker{self.node_id}"


class Worker:
    """A worker node: one host, ``spec.executors`` pulling executors."""

    def __init__(
        self,
        sim: Simulator,
        topology: StarTopology,
        spec: WorkerSpec,
        scheduler: Address,
        collector: MetricsCollector,
        config: Optional[ExecutorConfig] = None,
        executor_id_base: int = 0,
        rng: Optional[np.random.Generator] = None,
        controller: Union[Address, Sequence[Address], None] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.host = topology.add_host(spec.name)
        base_config = config or ExecutorConfig()
        if spec.resources and base_config.exec_rsrc == 0:
            base_config = replace(base_config, exec_rsrc=spec.resources)
        self.executors: List[Executor] = [
            Executor(
                sim,
                self.host,
                executor_id=executor_id_base + i,
                scheduler=scheduler,
                collector=collector,
                node_id=spec.node_id,
                rack_id=spec.rack_id,
                config=base_config,
                local_port=7000 + i,
                controller=controller,
                rng=np.random.default_rng(
                    (rng.integers(0, 2**63) if rng is not None else 0)
                    + executor_id_base
                    + i
                ),
            )
            for i in range(spec.executors)
        ]

    def attach_obs(self, bus) -> None:
        """Point every executor's telemetry at ``bus``."""
        for executor in self.executors:
            executor.obs = bus

    def stop(self) -> None:
        """Gracefully stop every executor. Idempotent."""
        for executor in self.executors:
            executor.stop()

    @property
    def crashed(self) -> bool:
        return all(e.crashed for e in self.executors)

    def crash(self) -> None:
        """Fail-stop the whole node (§3.3: dead executors stop pulling).

        Idempotent; in-flight tasks are abandoned and the NIC receive
        rings are flushed. Recovery is client-driven (timeout resubmit)
        unless a repro.ctrl controller is configured, whose lease expiry
        reclaims this node's parked pulls and in-flight assignments.
        """
        for executor in self.executors:
            executor.crash()

    def restart(self) -> None:
        """Bring a crashed node back; executors resume pulling. Idempotent."""
        for executor in self.executors:
            executor.restart()

    def set_speed_factor(self, factor: float) -> None:
        """Scale task execution time on every executor (slowdown fault)."""
        if factor <= 0:
            raise ValueError(f"speed factor must be positive: {factor}")
        for executor in self.executors:
            executor.speed_factor = factor

    def tasks_executed(self) -> int:
        return sum(e.stats.tasks_executed for e in self.executors)

    def busy_fraction(self, elapsed_ns: int) -> float:
        if elapsed_ns <= 0 or not self.executors:
            return 0.0
        busy = sum(e.stats.busy_time_ns for e in self.executors)
        return busy / (elapsed_ns * len(self.executors))
