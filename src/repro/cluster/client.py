"""Open-loop clients submitting jobs to the scheduler (paper §3.1).

The client converts workload :class:`SubmitEvent`\\ s into job_submission
packets (splitting batches across packets when they exceed the per-packet
task limit, §4.3 "Handling Large Jobs"), and handles the scheduler's
responses:

* **error_packet** (queue full / repair window): retry the rejected tasks
  after a short wait (§4.3);
* **completion**: record end-to-end latency;
* **timeout**: tasks not completed within ``timeout_factor ×`` their
  execution time are resubmitted — the paper sets 2× in the R2P2 drop
  experiments (§8.3) and notes clients typically use 5–10×.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cluster.task import SubmitEvent, TaskSpec, encode_duration
from repro.metrics.collector import MetricsCollector
from repro.net.host import Host, Socket
from repro.net.packet import Address
from repro.protocol import codec
from repro.protocol.messages import (
    Completion,
    ErrorPacket,
    JobSubmission,
    SubmissionAck,
    TaskInfo,
)
from repro.protocol.codec import MAX_TASKS_PER_PACKET
from repro.sim.core import Simulator, us

CLIENT_PORT = 6000

TaskKey = Tuple[int, int, int]


@dataclass
class ClientConfig:
    """Client behaviour knobs."""

    #: base wait before retrying tasks bounced with an error_packet (§4.3)
    bounce_retry_ns: int = us(50)
    #: each bounce retry multiplies the wait (capped exponential backoff —
    #: a persistently full queue must not be hammered at a fixed interval)
    bounce_backoff: float = 2.0
    #: cap on the backoff multiplier (bounce_retry_ns × this at most)
    bounce_backoff_max: float = 32.0
    #: ± fraction of random jitter on each bounce wait, desynchronizing
    #: clients that were all bounced by the same full-queue window
    bounce_jitter: float = 0.2
    #: resubmit timeout as a multiple of task execution time; None disables
    timeout_factor: Optional[float] = None
    #: floor for the resubmit timeout (short tasks need network headroom)
    timeout_floor_ns: int = us(50)
    #: each retry doubles the timeout (congestion would otherwise amplify:
    #: a queue-backlogged burst times out, the duplicates deepen the
    #: backlog, and the spiral never converges)
    timeout_backoff: float = 2.0
    #: give up after this many resubmissions of one task
    max_retries: int = 8
    #: cap on tasks per job_submission packet
    max_tasks_per_packet: int = MAX_TASKS_PER_PACKET


@dataclass
class ClientStats:
    jobs_submitted: int = 0
    packets_sent: int = 0
    tasks_submitted: int = 0
    tasks_completed: int = 0
    bounces: int = 0
    #: bounced tasks abandoned because their shared retry budget
    #: (``max_retries``, bounces + timeouts combined) ran out
    bounce_give_ups: int = 0
    timeouts: int = 0
    #: timed-out tasks abandoned because the shared retry budget ran out
    timeout_give_ups: int = 0
    #: completion notices for tasks already completed (resubmission races
    #: or duplicated packets); suppressed, first completion wins
    duplicate_completions: int = 0
    #: completion notices for tasks this client never submitted (stray or
    #: misrouted traffic); ignored without creating a phantom record
    stray_completions: int = 0


class Client:
    """One submitting client (UID) with an open-loop arrival process."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        uid: int,
        scheduler: Address,
        workload: Iterable[SubmitEvent],
        collector: MetricsCollector,
        config: Optional[ClientConfig] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.uid = uid
        self.scheduler = scheduler
        self.collector = collector
        self.config = config or ClientConfig()
        self.stats = ClientStats()
        self.socket: Socket = host.socket(CLIENT_PORT)
        self._next_jid = 0
        #: tasks submitted and not yet completed, for retries
        self._outstanding: Dict[TaskKey, TaskSpec] = {}
        #: per-task retry count, shared by bounce retries and timeout
        #: resubmissions; pruned on completion
        self._retries: Dict[TaskKey, int] = {}
        #: tasks abandoned after exhausting the retry budget — the one
        #: *allowed* way a submitted task ends incomplete; the verify
        #: oracle treats any other incomplete task as lost
        self._gave_up: set = set()
        self._rng = np.random.default_rng(100_000 + uid)
        self._timeout_heap: List[Tuple[int, TaskKey]] = []
        self._timeout_waker = None
        self.submit_process = sim.spawn(
            self._submit_loop(iter(workload)), name=f"client{uid}-submit"
        )
        self.recv_process = sim.spawn(self._recv_loop(), name=f"client{uid}-recv")
        if self.config.timeout_factor is not None:
            self.timeout_process = sim.spawn(
                self._timeout_loop(), name=f"client{uid}-timeout"
            )

    # -- submission ---------------------------------------------------------

    def _task_info(self, tid: int, spec: TaskSpec) -> TaskInfo:
        return TaskInfo(
            tid=tid,
            fn_id=spec.fn_id,
            fn_par=encode_duration(spec.duration_ns),
            tprops=spec.tprops,
        )

    def _send_job(self, jid: int, infos: List[TaskInfo]) -> None:
        message = JobSubmission(uid=self.uid, jid=jid, tasks=infos)
        self.socket.send(self.scheduler, message, codec.wire_size(message))
        self.stats.packets_sent += 1

    def _arm_timeout(self, key: TaskKey, spec: TaskSpec) -> None:
        factor = self.config.timeout_factor
        if factor is None:
            return
        retries = self._retries.get(key, 0)
        backoff = self.config.timeout_backoff ** retries
        deadline = self.sim.now + int(
            max(spec.duration_ns * factor, self.config.timeout_floor_ns)
            * backoff
        )
        heapq.heappush(self._timeout_heap, (deadline, key))
        if self._timeout_waker is not None and not self._timeout_waker.triggered:
            self._timeout_waker.succeed()
            self._timeout_waker = None

    def _submit_event(self, event: SubmitEvent) -> None:
        jid = self._next_jid
        self._next_jid += 1
        self.stats.jobs_submitted += 1
        cap = self.config.max_tasks_per_packet
        infos: List[TaskInfo] = []
        for tid, spec in enumerate(event.tasks):
            key = (self.uid, jid, tid)
            self._outstanding[key] = spec
            self.collector.on_submit(
                key, self.sim.now, priority=spec.priority,
                duration_ns=spec.duration_ns,
            )
            self._arm_timeout(key, spec)
            self.stats.tasks_submitted += 1
            infos.append(self._task_info(tid, spec))
            if len(infos) == cap:
                self._send_job(jid, infos)
                infos = []
        if infos:
            self._send_job(jid, infos)

    def _submit_loop(self, events):
        for event in events:
            if event.time_ns > self.sim.now:
                yield self.sim.timeout(event.time_ns - self.sim.now)
            self._submit_event(event)

    # -- responses ------------------------------------------------------------

    def _recv_loop(self):
        while True:
            packet = yield self.socket.recv()
            payload = packet.payload
            if isinstance(payload, Completion):
                self._on_completion(payload)
            elif isinstance(payload, ErrorPacket):
                self.sim.spawn(self._retry_bounced(payload))
            elif isinstance(payload, SubmissionAck):
                pass  # informational
            # anything else: stray traffic, ignore

    def _on_completion(self, completion: Completion) -> None:
        key = completion.key
        if key not in self._outstanding and key not in self.collector.records:
            # A completion for a task this client never submitted would
            # otherwise fabricate a phantom record (submitted_at=-1);
            # ignore it and count the stray.
            self.stats.stray_completions += 1
            return
        self.collector.on_complete(key, self.sim.now)
        self._retries.pop(key, None)
        self._gave_up.discard(key)
        if self._outstanding.pop(key, None) is not None:
            self.stats.tasks_completed += 1
        else:
            self.stats.duplicate_completions += 1

    # -- verify-oracle inspection -------------------------------------------

    def outstanding_keys(self) -> set:
        """Keys submitted but not completed (oracle inspection)."""
        return set(self._outstanding)

    def gave_up_keys(self) -> set:
        """Outstanding keys abandoned after the retry budget ran out."""
        return set(self._gave_up)

    def pending_timeout_keys(self) -> set:
        """Outstanding keys that still have a resubmit timer armed.

        The timeout heap keeps stale entries for completed tasks until
        the drain loop reaches them; filtering by ``_outstanding`` gives
        the live view the quiescence invariant needs: an outstanding key
        with no pending timer and no give-up was silently abandoned.
        """
        return {
            key for _, key in self._timeout_heap if key in self._outstanding
        }

    def _bounce_delay_ns(self, error: ErrorPacket) -> int:
        """Wait before re-sending a bounced batch.

        Capped exponential in the batch's retry round (its least-retried
        outstanding task), with jitter, and never below the scheduler's
        degraded-mode ``backoff_hint_ns``.
        """
        cfg = self.config
        rounds = min(
            (
                self._retries.get((error.uid, error.jid, t.tid), 0)
                for t in error.tasks
                if (error.uid, error.jid, t.tid) in self._outstanding
            ),
            default=0,
        )
        multiplier = min(cfg.bounce_backoff ** rounds, cfg.bounce_backoff_max)
        delay = cfg.bounce_retry_ns * multiplier
        if cfg.bounce_jitter > 0:
            delay *= 1.0 + float(
                self._rng.uniform(-cfg.bounce_jitter, cfg.bounce_jitter)
            )
        return max(1, int(max(delay, error.backoff_hint_ns)))

    def _retry_bounced(self, error: ErrorPacket):
        """Re-send tasks rejected by a full queue, after a backoff wait.

        Each retry draws on the same ``max_retries`` budget as timeout
        resubmissions, so a persistently full queue ends in a counted
        give-up instead of an infinite bounce loop.
        """
        yield self.sim.timeout(self._bounce_delay_ns(error))
        infos = []
        for task in error.tasks:
            key = (error.uid, error.jid, task.tid)
            spec = self._outstanding.get(key)
            if spec is None:
                continue  # completed meanwhile (duplicate submission)
            retries = self._retries.get(key, 0)
            if retries >= self.config.max_retries:
                # Budget exhausted: the task stays outstanding (reported
                # as unfinished) rather than spinning forever.
                self.stats.bounce_give_ups += 1
                self._gave_up.add(key)
                continue
            self._retries[key] = retries + 1
            self.collector.on_bounce(key, now=self.sim.now)
            self.stats.bounces += 1
            self._arm_timeout(key, spec)
            infos.append(task)
            if len(infos) == self.config.max_tasks_per_packet:
                self._send_job(error.jid, infos)
                infos = []
        if infos:
            self._send_job(error.jid, infos)

    # -- timeouts (§8.3) -------------------------------------------------------

    def _deadline_ns(self, key: TaskKey, spec: TaskSpec) -> int:
        """Resubmit deadline for one task, honouring the retry backoff."""
        factor = self.config.timeout_factor or 1.0
        backoff = self.config.timeout_backoff ** self._retries.get(key, 0)
        return int(
            max(spec.duration_ns * factor, self.config.timeout_floor_ns)
            * backoff
        )

    def _presumed_running(self, key: TaskKey, spec: TaskSpec) -> bool:
        """Whether this task is plausibly still executing somewhere.

        ``started_at`` alone is not enough: an executor that crashed
        mid-task leaves the record started-but-never-finished forever, and
        trusting it would mean never resubmitting — the task is lost. A
        start only defers resubmission while the execution is younger than
        the task's own timeout window; past that, the executor is presumed
        dead (or the completion lost) and the client resubmits.
        """
        record = self.collector.records.get(key)
        if record is None or record.started_at < 0:
            return False
        if record.finished_at >= 0:
            # Finished but the completion never arrived: resubmit.
            return False
        return self.sim.now - record.started_at <= self._deadline_ns(key, spec)

    def _timeout_loop(self):
        while True:
            # Lazily discard heap entries for tasks that already
            # completed — otherwise the heap grows by one entry per armed
            # timeout for the lifetime of the run and the loop sleeps on
            # deadlines of long-dead entries.
            heap = self._timeout_heap
            while heap and heap[0][1] not in self._outstanding:
                heapq.heappop(heap)
            if not heap:
                self._timeout_waker = self.sim.event()
                yield self._timeout_waker
                continue
            deadline, key = heap[0]
            if deadline > self.sim.now:
                yield self.sim.timeout(deadline - self.sim.now)
                continue
            heapq.heappop(heap)
            spec = self._outstanding.get(key)
            if spec is None:
                continue  # completed in time
            if self._presumed_running(key, spec):
                # Running somewhere; resubmitting would only duplicate
                # work. Re-arm and wait.
                self._arm_timeout(key, spec)
                continue
            retries = self._retries.get(key, 0)
            if retries >= self.config.max_retries:
                # Give up; the task counts as unfinished. Counted so the
                # verify oracle can tell a budgeted give-up from a task
                # the client silently lost track of.
                if key not in self._gave_up:
                    self.stats.timeout_give_ups += 1
                    self._gave_up.add(key)
                continue
            self._retries[key] = retries + 1
            self.stats.timeouts += 1
            self.collector.on_resubmit(key, self.sim.now)
            self._arm_timeout(key, spec)
            uid, jid, tid = key
            self._send_job(jid, [self._task_info(tid, spec)])
