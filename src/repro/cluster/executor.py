"""Pull-model executors (paper §3.1, §4.6).

An executor is one process per logical core. When free it sends a
task_request to the scheduler; on a task_assignment it executes (busy for
the task duration plus any data-access penalty), then sends the completion
with the next task request piggybacked. On a no-op it backs off for a
polling interval and asks again — the paper's "sends another task request
periodically".

The executor is idle for one RTT while pulling — the deliberate CPU
efficiency trade-off that eliminates node-level blocking (§3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.cluster.task import FN_NOOP, decode_duration
from repro.core.policies import decode_locality_tprops
from repro.metrics.collector import MetricsCollector
from repro.net.host import Host, Socket
from repro.net.packet import Address
from repro.protocol import codec
from repro.protocol.messages import (
    Completion,
    Heartbeat,
    NoOpTask,
    TaskAssignment,
    TaskRequest,
)
from repro.sim.core import AnyOf, Interrupted, Simulator, Timeout, us

EXECUTOR_PORT_BASE = 7000


@dataclass(frozen=True)
class LocalityCostModel:
    """Data-access penalty by placement level (§8.5, Fig. 10 setup).

    The paper sets intra-rack and inter-rack storage access to 20 µs and
    100 µs; node-local data costs nothing extra.
    """

    node_racks: Dict[int, int]
    intra_rack_ns: int = us(20)
    inter_rack_ns: int = us(100)

    def penalty(self, tprops: int, node_id: int, rack_id: int) -> int:
        data_nodes = decode_locality_tprops(tprops)
        if not data_nodes or node_id in data_nodes:
            return 0
        data_racks = {
            self.node_racks[n] for n in data_nodes if n in self.node_racks
        }
        if rack_id in data_racks:
            return self.intra_rack_ns
        return self.inter_rack_ns

    def placement(self, tprops: int, node_id: int, rack_id: int) -> str:
        data_nodes = decode_locality_tprops(tprops)
        if not data_nodes or node_id in data_nodes:
            return "node"
        data_racks = {
            self.node_racks[n] for n in data_nodes if n in self.node_racks
        }
        return "rack" if rack_id in data_racks else "remote"


@dataclass
class ExecutorConfig:
    """Executor behaviour knobs.

    Polling backs off exponentially while the queue stays empty (each
    consecutive no-op doubles the wait up to ``poll_backoff_max`` times
    the base interval) and resets on the next real task — idle executors
    should not hammer the scheduler, which matters for the server-based
    variants whose CPU is the bottleneck.
    """

    poll_interval_ns: int = us(25)
    poll_jitter: float = 0.2
    poll_backoff_max: int = 8
    exec_rsrc: int = 0
    locality: Optional[LocalityCostModel] = None
    #: record each successful pull's request->assignment round trip
    #: (the paper's get_task() step, Fig. 13)
    record_pull_rtts: bool = False
    #: re-send the task request if no response arrives (a response can be
    #: tail-dropped at an overloaded server scheduler's receive ring)
    response_timeout_ns: int = us(1_000)
    #: liveness beacon period when a controller address is configured
    #: (repro.ctrl lease-based membership); must be well below the
    #: controller's lease_ns or healthy executors flap
    heartbeat_interval_ns: int = us(100)


@dataclass
class ExecutorStats:
    tasks_executed: int = 0
    noops_received: int = 0
    requests_sent: int = 0
    busy_time_ns: int = 0
    idle_pull_time_ns: int = 0
    pull_rtts_ns: list = None  # populated when record_pull_rtts is set


class Executor:
    """One pulling worker thread bound to a socket on its host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        executor_id: int,
        scheduler: Address,
        collector: MetricsCollector,
        node_id: int = 0,
        rack_id: int = 0,
        config: Optional[ExecutorConfig] = None,
        local_port: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        controller: Union[Address, Sequence[Address], None] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.executor_id = executor_id
        self.scheduler = scheduler
        self.collector = collector
        self.node_id = node_id
        self.rack_id = rack_id
        self.config = config or ExecutorConfig()
        self.stats = ExecutorStats()
        port = local_port if local_port is not None else (
            EXECUTOR_PORT_BASE + executor_id
        )
        self.socket: Socket = host.socket(port)
        self._rng = rng or np.random.default_rng(executor_id)
        self._stopped = False
        self._crashed = False
        #: optional :class:`repro.obs.bus.TelemetryBus` for pull-RTT and
        #: no-op histograms (task lifecycle flows via the collector)
        self.obs = None
        #: execution-time multiplier (fault injection: >1 models a
        #: thermally-throttled or contended node)
        self.speed_factor: float = 1.0
        #: control-plane endpoint(s) for liveness heartbeats (repro.ctrl);
        #: None means no membership protocol (the paper's baseline). A
        #: sequence of addresses broadcasts each beat to every replica of
        #: a replicated controller (repro.ctrl.replication) so followers
        #: keep warm lease tables without leader-mediated sync.
        self.controller = controller
        if controller is None:
            self._controller_addrs = []
        elif isinstance(controller, Address):
            self._controller_addrs = [controller]
        else:
            self._controller_addrs = list(controller)
        self._hb_process = None
        # The pull request never varies, so build it (and its wire size)
        # once. Consumers never mutate payloads in place — the scheduler's
        # priority ladder and piggyback paths copy via dataclasses.replace
        # — so sharing one instance across sends is safe.
        self._request_msg = TaskRequest(
            executor_id=executor_id,
            node_id=node_id,
            rack_id=rack_id,
            exec_rsrc=self.config.exec_rsrc,
            rtrv_prio=1,
        )
        self._request_size = codec.wire_size(self._request_msg)
        # Pre-drawn jitter pool for _poll_delay. numpy's Generator consumes
        # the stream identically for uniform(a, b, 64) and 64 scalar
        # uniform(a, b) calls, so batching keeps draw values bit-identical —
        # but only while this RNG has a single consumer. A configured
        # controller adds a heartbeat loop sharing the stream, so batching
        # is disabled in that case (see _poll_delay).
        self._jitter_pool = None
        self._jitter_i = 0
        self.process = sim.spawn(self._run(), name=f"executor-{executor_id}")
        if controller is not None:
            self._hb_process = sim.spawn(
                self._heartbeat_loop(), name=f"executor-{executor_id}-hb"
            )

    # -- helpers -----------------------------------------------------------

    def _request(self) -> TaskRequest:
        return self._request_msg

    def _send(self, message) -> None:
        self.socket.send(self.scheduler, message, codec.wire_size(message))

    def _send_request(self) -> None:
        self.socket.send(self.scheduler, self._request_msg, self._request_size)

    def _poll_delay(self, consecutive_noops: int) -> int:
        base = self.config.poll_interval_ns
        backoff = min(
            1 << max(0, consecutive_noops - 1), self.config.poll_backoff_max
        )
        base *= backoff
        jitter = self.config.poll_jitter
        if jitter <= 0:
            return base
        if self.controller is None:
            pool = self._jitter_pool
            i = self._jitter_i
            if pool is None or i >= 64:
                # tolist() keeps the exact float64 values while making the
                # per-call index a plain-float load instead of a numpy
                # scalar extraction.
                pool = self._jitter_pool = self._rng.uniform(
                    -jitter, jitter, 64
                ).tolist()
                i = 0
            self._jitter_i = i + 1
            scale = 1.0 + pool[i]
        else:
            scale = 1.0 + float(self._rng.uniform(-jitter, jitter))
        return max(1, int(base * scale))

    def stop(self) -> None:
        """Graceful stop: finish the current pull/task, then exit. Idempotent."""
        self._stopped = True

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Fail-stop this executor immediately. Idempotent.

        The in-flight task (if any) is abandoned mid-execution and packets
        queued on the receive ring are lost — the paper's §3.3 model, in
        which a dead executor simply stops pulling and the switch never
        hears from it again.
        """
        if self._crashed:
            return
        self._crashed = True
        self._stopped = True
        self.socket.drain()
        self.process.interrupt("executor crash")
        if self._hb_process is not None and not self._hb_process.triggered:
            # Heartbeats stop with the node; the controller's lease lapse
            # is what detects this crash.
            self._hb_process.interrupt("executor crash")

    def restart(self) -> None:
        """Boot a fresh pulling loop after a crash (or completed stop).

        Idempotent: a live executor is left alone. Stale packets addressed
        to the dead incarnation are drained, not replayed.
        """
        if not self._crashed and not self.process.triggered:
            return
        self._crashed = False
        self._stopped = False
        self.socket.drain()
        self.process = self.sim.spawn(
            self._run(), name=f"executor-{self.executor_id}"
        )
        if self.controller is not None:
            self._hb_process = self.sim.spawn(
                self._heartbeat_loop(), name=f"executor-{self.executor_id}-hb"
            )

    def _exec_ns(self, duration: int) -> int:
        if self.speed_factor == 1.0:
            return duration
        return max(0, int(duration * self.speed_factor))

    def _recv_or_timeout(self):
        """Wait for a response; None when the response timeout expires."""
        get_event = self.socket.recv()
        timer = Timeout(self.sim, self.config.response_timeout_ns)
        winner = yield AnyOf(self.sim, (get_event, timer))
        if winner is get_event:
            return get_event.value
        if not self.socket.cancel_recv(get_event):
            # A packet raced in while the timeout fired; keep it.
            return get_event.value
        return None

    # -- liveness heartbeats (repro.ctrl) -----------------------------------

    def _heartbeat_loop(self):
        """Beacon liveness to the controller until crash/stop.

        Startup is staggered and each period jittered so a fleet's
        heartbeats do not arrive in lockstep bursts at the controller.
        """
        beat = Heartbeat(executor_id=self.executor_id, node_id=self.node_id)
        size = codec.wire_size(beat)
        interval = self.config.heartbeat_interval_ns
        try:
            yield self.sim.timeout(int(self._rng.uniform(0, interval)))
            while not self._stopped:
                # One jitter draw per beat regardless of replica count:
                # the RNG stream stays bit-identical when a cluster is
                # reconfigured from one controller to a replica group.
                for addr in self._controller_addrs:
                    self.socket.send(addr, beat, size)
                jitter = 1.0 + float(self._rng.uniform(-0.1, 0.1))
                yield self.sim.timeout(max(1, int(interval * jitter)))
        except Interrupted:
            return  # crash: the lease lapses at the controller

    # -- main loop ----------------------------------------------------------

    def _run(self):
        try:
            yield from self._pull_loop()
        except Interrupted:
            return  # fail-stop crash: abandon everything mid-flight

    def _pull_loop(self):
        # Invariant handles bound once: the generator body is the single
        # hottest actor in every workload, and each pull cycle otherwise
        # re-reads the same attributes several times.
        sim = self.sim
        stats = self.stats
        socket = self.socket
        collector = self.collector
        send_request = self._send_request
        poll_delay = self._poll_delay
        response_timeout_ns = self.config.response_timeout_ns
        # Stagger start-up so idle polls do not arrive in lockstep.
        yield Timeout(sim, int(self._rng.uniform(0, self.config.poll_interval_ns)))
        send_request()
        stats.requests_sent += 1
        pull_started = sim._now

        consecutive_noops = 0
        while not self._stopped:
            # _recv_or_timeout, inlined: the yield-from delegation would
            # route every resumption through an extra generator frame.
            get_event = socket.recv()
            timer = Timeout(sim, response_timeout_ns)
            winner = yield AnyOf(sim, (get_event, timer))
            if winner is get_event or not socket.cancel_recv(get_event):
                packet = get_event._value
            else:
                packet = None
            if packet is None:
                # Response lost (overloaded scheduler path): re-request.
                send_request()
                stats.requests_sent += 1
                pull_started = sim._now
                continue
            payload = packet.payload

            if payload.__class__ is NoOpTask:
                stats.noops_received += 1
                if self.obs is not None:
                    self.obs.incr("executor.noops")
                consecutive_noops += 1
                yield Timeout(sim, poll_delay(consecutive_noops))
                send_request()
                stats.requests_sent += 1
                pull_started = sim._now
                continue

            if payload.__class__ is not TaskAssignment:
                if isinstance(payload, TaskAssignment):
                    pass  # a subclassed assignment still executes below
                elif isinstance(payload, NoOpTask):
                    # Subclassed no-op: back off exactly like the fast path.
                    stats.noops_received += 1
                    if self.obs is not None:
                        self.obs.incr("executor.noops")
                    consecutive_noops += 1
                    yield Timeout(sim, self._poll_delay(consecutive_noops))
                    self._send_request()
                    stats.requests_sent += 1
                    pull_started = sim._now
                    continue
                else:
                    continue  # stray traffic; a real executor would log this

            now = sim._now
            stats.idle_pull_time_ns += now - pull_started
            if self.config.record_pull_rtts:
                if stats.pull_rtts_ns is None:
                    stats.pull_rtts_ns = []
                stats.pull_rtts_ns.append(now - pull_started)
            if self.obs is not None:
                self.obs.observe("executor.pull_rtt_ns", now - pull_started)
            consecutive_noops = 0
            key = payload.key
            collector.on_assign(key, now, self.executor_id, self.node_id)
            collector.on_start(key, now)

            started = now
            yield from self._run_task(payload)
            now = sim._now
            stats.busy_time_ns += now - started
            stats.tasks_executed += 1
            collector.on_finish(key, now)

            completion = Completion(
                uid=payload.uid,
                jid=payload.jid,
                tid=payload.task.tid,
                executor_id=self.executor_id,
                success=True,
                client=payload.client,
                piggyback_request=self._request_msg,
            )
            self._send(completion)
            stats.requests_sent += 1
            pull_started = now

    def _run_task(self, assignment: TaskAssignment):
        """Execute one task, including any §4.4 parameter indirection."""
        from repro.cluster import largeparams

        task = assignment.task
        if task.fn_id == largeparams.FN_FETCH_PARAMS:
            # Transmission function (§4.4): pull the real parameters from
            # the submitting client before executing.
            duration, param_bytes = largeparams.decode_fetch_par(task.fn_par)
            if assignment.client is not None:
                yield from self._fetch(
                    Address(assignment.client.node, largeparams.CLIENT_PARAM_PORT),
                    largeparams.ParamRequest(
                        uid=assignment.uid,
                        jid=assignment.jid,
                        tid=task.tid,
                    ),
                    largeparams.ParamRequest.wire_size(),
                    largeparams.ParamBlob,
                )
            if duration > 0:
                yield self.sim.timeout(self._exec_ns(duration))
            return
        if task.fn_id == largeparams.FN_STORED_INPUT:
            # Storage pointer (§4.4): read the input object from the
            # cluster store; free lookup when the data is node-local.
            duration, node_id, object_bytes = largeparams.decode_stored_par(
                task.fn_par
            )
            if node_id == self.node_id:
                yield self.sim.timeout(2_000)  # local in-memory lookup
            else:
                yield from self._fetch(
                    largeparams.storage_address_for_node(node_id),
                    largeparams.StorageGet(
                        object_id=task.tid, size_bytes=object_bytes
                    ),
                    largeparams.StorageGet.wire_size(),
                    largeparams.StorageBlob,
                )
            if duration > 0:
                yield self.sim.timeout(self._exec_ns(duration))
            return

        if task.fn_id == FN_NOOP:
            return
        duration = decode_duration(task.fn_par)
        locality = self.config.locality
        if locality is not None:
            duration += locality.penalty(
                task.tprops, self.node_id, self.rack_id
            )
            self.collector.on_placement(
                assignment.key,
                locality.placement(task.tprops, self.node_id, self.rack_id),
            )
        if duration > 0:
            yield self.sim.timeout(self._exec_ns(duration))

    def _fetch(self, dst: Address, request, request_size: int, blob_type):
        """One request/response exchange on this executor's socket."""
        self.socket.send(dst, request, request_size)
        deadline = 4  # tolerate a few stray packets, never hang
        while deadline:
            packet = yield from self._recv_or_timeout()
            if packet is None:
                # response lost; retry once per timeout
                self.socket.send(dst, request, request_size)
                deadline -= 1
                continue
            if isinstance(packet.payload, blob_type):
                return packet.payload
            deadline -= 1
        return None
