"""Task and job specifications exchanged between workloads and clients.

A workload generator produces :class:`SubmitEvent`\\ s; the client turns
them into job_submission packets. The pre-compiled function convention is
the paper's (§4.1): ``fn_id`` selects the function, ``fn_par`` carries the
arguments. The synthetic evaluation functions are:

* ``FN_SPIN`` — busy-loop for the duration packed into ``fn_par``
  (the paper's executors "continually perform integer arithmetic
  operations for the task duration", §8.4);
* ``FN_NOOP`` — retrieve, drop, re-request (the Fig. 5b throughput probe).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

FN_SPIN = 0
FN_NOOP = 1

_DURATION = struct.Struct(">Q")


def encode_duration(duration_ns: int) -> bytes:
    """Pack a task duration into the FN_PAR argument blob."""
    if duration_ns < 0:
        raise ValueError(f"duration must be >= 0: {duration_ns}")
    return _DURATION.pack(duration_ns)


def decode_duration(fn_par: bytes) -> int:
    """Unpack a task duration from FN_PAR (0 when absent)."""
    if len(fn_par) < _DURATION.size:
        return 0
    return _DURATION.unpack_from(fn_par, 0)[0]


@dataclass(frozen=True)
class TaskSpec:
    """One task as produced by a workload generator.

    Attributes:
        duration_ns: pure execution time (excluding data-access penalty).
        tprops: policy-specific properties word copied into TASK_INFO.
        priority: metrics label (equals the TPROPS level for the priority
            policy; 0 for unprioritized workloads).
        fn_id: pre-compiled function id.
    """

    duration_ns: int
    tprops: int = 0
    priority: int = 0
    fn_id: int = FN_SPIN


@dataclass(frozen=True)
class SubmitEvent:
    """A batch of independent tasks submitted at one instant."""

    time_ns: int
    tasks: Tuple[TaskSpec, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("SubmitEvent needs at least one task")

    @property
    def count(self) -> int:
        return len(self.tasks)
