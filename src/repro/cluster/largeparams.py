"""Large task parameters (paper §4.4).

FN_PAR is a fixed-size field; parameters that do not fit use one of the
two indirection mechanisms the paper adopts:

1. **Transmission function** (R2P2-style): the submitted task carries
   only the parameter *size*; when scheduled, the executor contacts the
   submitting client directly and pulls the real parameters before
   executing (one extra RTT plus the transfer).
2. **In-memory storage pointer**: the client first stores the input on a
   cluster storage node and submits a task whose FN_PAR points at it;
   the executor fetches the object from that node (pairing naturally
   with the locality policy, §5.3, which tries to run the task where the
   data already is).

Both are exercised end-to-end by the executor (`fn_id` selects the
mechanism) and tested in ``tests/test_largeparams.py``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ProtocolError
from repro.net.host import Host, Socket
from repro.net.packet import Address

#: fn_id values selecting the indirection mechanism (FN_SPIN/FN_NOOP are
#: 0/1 in repro.cluster.task)
FN_FETCH_PARAMS = 2
FN_STORED_INPUT = 3

CLIENT_PARAM_PORT = 6001
STORAGE_PORT = 6100

_FETCH = struct.Struct(">QI")      # duration_ns, param_bytes
_STORED = struct.Struct(">QHI")    # duration_ns, node_id, object_bytes


def encode_fetch_par(duration_ns: int, param_bytes: int) -> bytes:
    """FN_PAR for the transmission-function mechanism."""
    if duration_ns < 0 or param_bytes < 0:
        raise ProtocolError("duration and size must be >= 0")
    return _FETCH.pack(duration_ns, param_bytes)


def decode_fetch_par(fn_par: bytes) -> Tuple[int, int]:
    if len(fn_par) < _FETCH.size:
        raise ProtocolError("short FN_PAR for fetch mechanism")
    return _FETCH.unpack_from(fn_par, 0)


def encode_stored_par(duration_ns: int, node_id: int, object_bytes: int) -> bytes:
    """FN_PAR for the storage-pointer mechanism."""
    if duration_ns < 0 or object_bytes < 0:
        raise ProtocolError("duration and size must be >= 0")
    return _STORED.pack(duration_ns, node_id, object_bytes)


def decode_stored_par(fn_par: bytes) -> Tuple[int, int, int]:
    if len(fn_par) < _STORED.size:
        raise ProtocolError("short FN_PAR for stored mechanism")
    return _STORED.unpack_from(fn_par, 0)


@dataclass
class ParamRequest:
    """Executor -> client: send me the real parameters for this task."""

    uid: int
    jid: int
    tid: int

    @staticmethod
    def wire_size() -> int:
        return 13


@dataclass
class ParamBlob:
    """Client -> executor: the parameter bytes (modelled by size)."""

    uid: int
    jid: int
    tid: int
    size_bytes: int


@dataclass
class StorageGet:
    """Executor -> storage node: read an object."""

    object_id: int
    size_bytes: int

    @staticmethod
    def wire_size() -> int:
        return 13


@dataclass
class StorageBlob:
    """Storage node -> executor: the object contents (modelled by size)."""

    object_id: int
    size_bytes: int


class ParamServer:
    """Serves parameter blobs on the client's param port (mechanism 1)."""

    def __init__(self, host: Host) -> None:
        self.socket: Socket = host.socket(CLIENT_PARAM_PORT)
        self.socket.set_handler(self._on_request)
        #: (uid, jid, tid) -> parameter size in bytes
        self.params: Dict[Tuple[int, int, int], int] = {}
        self.requests_served = 0

    def register(self, uid: int, jid: int, tid: int, size_bytes: int) -> None:
        self.params[(uid, jid, tid)] = size_bytes

    def _on_request(self, packet) -> None:
        request = packet.payload
        if not isinstance(request, ParamRequest):
            return
        size = self.params.get((request.uid, request.jid, request.tid), 0)
        self.requests_served += 1
        blob = ParamBlob(
            uid=request.uid, jid=request.jid, tid=request.tid, size_bytes=size
        )
        self.socket.send(packet.src, blob, max(1, size))

    @property
    def address(self) -> Address:
        return self.socket.address


class StorageNode:
    """An in-memory object store co-located on a worker host (mechanism 2).

    Reads cost a fixed lookup latency plus the wire transfer of the
    object. This is the storage system the paper's data-analytics
    deployments assume ("clients first store the input data on an
    in-memory storage system deployed on the same cluster", §4.4).
    """

    def __init__(self, host: Host, lookup_latency_ns: int = 2_000) -> None:
        self.host = host
        self.socket: Socket = host.socket(STORAGE_PORT)
        self.socket.set_handler(self._on_get)
        self.lookup_latency_ns = lookup_latency_ns
        self.objects: Dict[int, int] = {}  # object_id -> size
        self.gets_served = 0

    def put(self, object_id: int, size_bytes: int) -> None:
        self.objects[object_id] = size_bytes

    def _on_get(self, packet) -> None:
        request = packet.payload
        if not isinstance(request, StorageGet):
            return
        size = self.objects.get(request.object_id, request.size_bytes)
        self.gets_served += 1
        blob = StorageBlob(object_id=request.object_id, size_bytes=size)
        self.host.sim.call_in(
            self.lookup_latency_ns,
            self.socket.send,
            packet.src,
            blob,
            max(1, size),
        )

    @property
    def address(self) -> Address:
        return self.socket.address


def storage_address_for_node(node_id: int) -> Address:
    """Address of the storage service co-located on ``worker<node_id>``."""
    return Address(f"worker{node_id}", STORAGE_PORT)
