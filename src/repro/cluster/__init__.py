"""Cluster runtime: pull-model executors, worker nodes and clients (§3)."""

from repro.cluster.task import (
    TaskSpec,
    SubmitEvent,
    decode_duration,
    encode_duration,
)
from repro.cluster.executor import Executor, ExecutorConfig, LocalityCostModel
from repro.cluster.worker import Worker, WorkerSpec
from repro.cluster.client import Client, ClientConfig

__all__ = [
    "Client",
    "ClientConfig",
    "Executor",
    "ExecutorConfig",
    "LocalityCostModel",
    "SubmitEvent",
    "TaskSpec",
    "Worker",
    "WorkerSpec",
    "decode_duration",
    "encode_duration",
]
