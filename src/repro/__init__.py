"""Reproduction of Draconis (EuroSys '24): network-accelerated scheduling
for microsecond-scale workloads.

Subpackages:

* :mod:`repro.sim` -- discrete-event simulation kernel (integer-ns clock);
* :mod:`repro.net` -- packets, links, hosts, star topology;
* :mod:`repro.switchsim` -- the programmable-switch model with Tofino
  register-access constraints and metered recirculation;
* :mod:`repro.protocol` -- the scheduler wire protocol (paper Fig. 3);
* :mod:`repro.core` -- Draconis: the P4-compatible circular queue and the
  switch scheduler with FCFS / priority / resource / locality policies;
* :mod:`repro.cluster` -- pull-model executors, workers, clients;
* :mod:`repro.baselines` -- R2P2, RackSched, Sparrow, server-based Draconis;
* :mod:`repro.workloads` -- the paper's workload suite (section 8);
* :mod:`repro.metrics` -- task lifecycle records and latency summaries;
* :mod:`repro.analysis` -- queueing, switch-budget and scalability models;
* :mod:`repro.experiments` -- one module per paper figure/table.

Start with ``examples/quickstart.py`` or DESIGN.md.
"""

__version__ = "1.0.0"
