"""Shared plumbing for the live runtime: clock, counters, sockets."""

from __future__ import annotations

import socket
import time
from typing import Optional, Tuple

from repro.net.packet import Address

Endpoint = Tuple[str, int]
"""A UDP (host, port) pair as asyncio datagram transports use it."""

DEFAULT_SOCKET_BUFFER = 1 << 22
"""4 MiB send/receive buffers. Loopback UDP drops silently once the
receive buffer overflows; at the burst rates the throughput probe
generates, the Linux defaults (typically 208 KiB) lose packets long
before the event loop is the bottleneck."""


class WallClock:
    """Monotonic nanoseconds since construction.

    Exposes the same ``.now`` attribute the simulator core does, so an
    unmodified :class:`~repro.core.scheduler.DraconisProgram` reads
    wall-clock time through ``switch.sim.now`` without knowing it left
    the simulator.
    """

    __slots__ = ("t0",)

    def __init__(self) -> None:
        self.t0 = time.monotonic_ns()

    @property
    def now(self) -> int:
        return time.monotonic_ns() - self.t0


class Counters(dict):
    """Per-component event counters (a dict with an increment helper)."""

    def incr(self, name: str, n: int = 1) -> None:
        self[name] = self.get(name, 0) + n


def bump_socket_buffers(
    transport, size: int = DEFAULT_SOCKET_BUFFER
) -> None:
    """Enlarge a datagram transport's socket buffers (best effort)."""
    sock: Optional[socket.socket] = transport.get_extra_info("socket")
    if sock is None:
        return
    for option in (socket.SO_RCVBUF, socket.SO_SNDBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, option, size)
        except OSError:
            pass  # the kernel cap (rmem_max) wins; keep whatever it grants


def endpoint_of(address: Address) -> Endpoint:
    """Map a protocol :class:`Address` onto a UDP endpoint.

    In live mode the ``node`` field carries the literal host/IP, so the
    mapping is the identity — kept as a function so the conversion sites
    are findable if live mode ever grows a name service.
    """
    return (address.node, address.port)
