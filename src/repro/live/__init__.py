"""Real-network runtime: the Draconis protocol over actual UDP sockets.

Every other subsystem executes inside the discrete-event simulator; this
package runs the same wire format (:mod:`repro.protocol`) and the same
scheduling structures (:mod:`repro.core`) on wall-clock time across real
asyncio datagram sockets:

* :class:`~repro.live.softswitch.SoftSwitch` — a software dataplane
  hosting an unmodified :class:`~repro.core.scheduler.DraconisProgram`
  behind a UDP socket, plus executor registration and JBSQ-style
  per-executor dispatch bounds;
* :class:`~repro.live.executor.LiveExecutor` — pulls and executes tasks
  (busy-spin or timer) with the workload's service-time distributions;
* :class:`~repro.live.client.LiveClient` /
  :mod:`~repro.live.loadgen` — submission, bounce/loss retry, and open-
  or closed-loop load generation;
* :mod:`~repro.live.conformance` — runs one workload spec through the
  simulator *and* the live runtime and asserts policy-level agreement.

The point is comparability: the scheduler logic, queues, policies and
codec are shared byte-for-byte with the simulator, so sim-vs-live
deviations isolate the things a simulator cannot model (timer
granularity, socket buffers, real packet loss).
"""

from repro.live.base import WallClock
from repro.live.chaos import (
    ChaosNet,
    ChaosRunResult,
    ChaosScenario,
    ChaosTransport,
    LiveFaultInjector,
    run_live_chaos,
    sample_live_plan,
    sample_scenario,
)
from repro.live.client import LiveClient, LiveClientConfig
from repro.live.executor import LiveExecutor, LiveExecutorConfig
from repro.live.loadgen import ClosedLoopGen, OpenLoopGen
from repro.live.results import LiveResult
from repro.live.runtime import LiveSpec, run_live
from repro.live.softswitch import SoftSwitch

__all__ = [
    "ChaosNet",
    "ChaosRunResult",
    "ChaosScenario",
    "ChaosTransport",
    "ClosedLoopGen",
    "LiveClient",
    "LiveClientConfig",
    "LiveExecutor",
    "LiveExecutorConfig",
    "LiveFaultInjector",
    "LiveResult",
    "LiveSpec",
    "OpenLoopGen",
    "SoftSwitch",
    "WallClock",
    "run_live",
    "run_live_chaos",
    "sample_live_plan",
    "sample_scenario",
]
