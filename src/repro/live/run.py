"""CLI: run one live workload on localhost and print/save the result.

    python -m repro.live.run --executors 4 --rate 2000 --duration 1.0
    python -m repro.live.run --mode closed --dist noop --out live.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.live.runtime import DISTRIBUTIONS, LiveSpec, run_live


def build_spec(args: argparse.Namespace) -> LiveSpec:
    return LiveSpec(
        executors=args.executors,
        policy=args.policy,
        priority_levels=args.levels,
        queue_capacity=args.queue_capacity,
        seed=args.seed,
        mode=args.mode,
        rate_tps=args.rate,
        duration_s=args.duration,
        tasks_per_job=args.tasks_per_job,
        outstanding_jobs=args.outstanding,
        dist=args.dist,
        mean_us=args.mean_us,
        max_outstanding=args.max_outstanding,
        drain_s=args.drain,
    )


def add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executors", type=int, default=4)
    parser.add_argument(
        "--policy", choices=("fcfs", "priority"), default="fcfs"
    )
    parser.add_argument("--levels", type=int, default=4)
    parser.add_argument("--queue-capacity", type=int, default=4096)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--mode", choices=("open", "closed"), default="open")
    parser.add_argument(
        "--rate", type=float, default=1000.0, help="open-loop tasks/sec"
    )
    parser.add_argument("--duration", type=float, default=1.0, help="seconds")
    parser.add_argument("--tasks-per-job", type=int, default=2)
    parser.add_argument(
        "--outstanding", type=int, default=8, help="closed-loop jobs in flight"
    )
    parser.add_argument("--dist", choices=DISTRIBUTIONS, default="exponential")
    parser.add_argument("--mean-us", type=float, default=250.0)
    parser.add_argument(
        "--max-outstanding",
        type=int,
        default=2,
        help="per-executor JBSQ-style bound",
    )
    parser.add_argument("--drain", type=float, default=3.0, help="seconds")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_spec_args(parser)
    parser.add_argument("--out", default=None, help="write result JSON here")
    args = parser.parse_args(argv)
    if args.mode == "closed" and args.dist == "exponential":
        # The common closed-loop intent is the noop throughput probe.
        args.tasks_per_job = max(args.tasks_per_job, 8)

    result = run_live(build_spec(args))
    for row in result.rows():
        print(row)
    if result.max_loadgen_lag_ns:
        print(f"loadgen max lag {result.max_loadgen_lag_ns / 1e3:.0f}us")
    if args.out:
        path = result.save(args.out)
        print(f"wrote {path}")
    return 0 if result.conserved else 1


if __name__ == "__main__":
    sys.exit(main())
