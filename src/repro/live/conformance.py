"""Sim-vs-live conformance: one workload spec, both runtimes, one verdict.

    python -m repro.live.conformance --seed 42

Three phases, each a :class:`~repro.live.runtime.LiveSpec`:

1. **FCFS agreement** — an open-loop exponential workload runs through
   the simulator and the live runtime from the same seed (identical
   submit-event lists, see :meth:`LiveSpec.events`). Asserts task
   conservation on the wire (zero lost, zero phantom), submitted/
   completed counts matching the simulator exactly, and Little's-law
   mean queue depth within a bounded skew of the simulator's.
2. **Priority agreement** — the same, under :class:`PriorityPolicy`,
   plus the switch's policy-level priority-inversion count must be 0.
3. **Throughput** — a closed-loop no-op probe; the live SoftSwitch must
   clear ``--min-tps`` tasks/sec end to end (default 5,000).

What is *not* compared: latency distributions. Wall-clock e2e times
include ~1 ms timer granularity and real socket hops the simulator does
not model (DESIGN.md §9 lists the known deviations); depths and counts
are the quantities that must transfer.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import LiveTimeoutError
from repro.experiments.common import RunResult, run_workload
from repro.live.results import LiveResult
from repro.live.runtime import LiveSpec, run_live
from repro.sim.core import ms

#: live-vs-sim mean queue depth must satisfy
#: ``abs(live - sim) <= max(DEPTH_SKEW_ABS, DEPTH_SKEW_REL * sim)``.
DEPTH_SKEW_ABS = 2.0
DEPTH_SKEW_REL = 4.0

Check = Tuple[str, bool, str]


def run_sim(spec: LiveSpec) -> RunResult:
    """The simulator counterpart of one live spec, same events."""
    return run_workload(
        spec.sim_config(),
        lambda rngs: iter(spec.events(rngs)),
        duration_ns=int(spec.duration_s * 1e9),
        drain_ns=ms(50),
    )


def sim_mean_depth(sim: RunResult, spec: LiveSpec) -> float:
    """Little's-law mean queue depth, same formula the live side uses."""
    horizon_ns = int(spec.duration_s * 1e9) + ms(50)
    if horizon_ns <= 0:
        return 0.0
    return sum(delay for _, delay in sim.queue_delays) / horizon_ns


def compare_phase(
    name: str, spec: LiveSpec, live: LiveResult, sim: RunResult
) -> List[Check]:
    """Agreement checks for one open-loop phase."""
    checks: List[Check] = [
        (
            f"{name}: conservation",
            live.conserved,
            f"lost={live.tasks_lost} phantom={live.phantoms}"
            f" dup={live.duplicates}",
        ),
        (
            f"{name}: submitted matches sim",
            live.tasks_submitted == sim.tasks_submitted,
            f"live={live.tasks_submitted} sim={sim.tasks_submitted}",
        ),
        (
            f"{name}: completed matches sim",
            live.tasks_completed == sim.tasks_completed,
            f"live={live.tasks_completed} sim={sim.tasks_completed}",
        ),
    ]
    live_depth = live.mean_queue_depth()
    sim_depth = sim_mean_depth(sim, spec)
    tolerance = max(DEPTH_SKEW_ABS, DEPTH_SKEW_REL * sim_depth)
    checks.append(
        (
            f"{name}: queue-depth skew bounded",
            abs(live_depth - sim_depth) <= tolerance,
            f"live={live_depth:.3f} sim={sim_depth:.3f} tol={tolerance:.3f}",
        )
    )
    return checks


def timed_run(spec: LiveSpec, timeout_s: Optional[float]) -> LiveResult:
    """One live phase under the hard wall-clock cap.

    A hung phase exits 2 immediately — the :class:`LiveTimeoutError`
    message carries the component diagnostic dump, which is the evidence
    a CI job timeout would have eaten.
    """
    try:
        return run_live(spec, timeout_s=timeout_s)
    except LiveTimeoutError as exc:
        print(f"\nlive phase TIMED OUT:\n{exc}", file=sys.stderr)
        raise SystemExit(2) from None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--executors", type=int, default=4)
    parser.add_argument(
        "--duration", type=float, default=0.4, help="per-phase seconds"
    )
    parser.add_argument(
        "--rate", type=float, default=800.0, help="open-loop tasks/sec"
    )
    parser.add_argument("--mean-us", type=float, default=150.0)
    parser.add_argument(
        "--min-tps",
        type=float,
        default=5000.0,
        help="throughput floor for the closed-loop no-op phase",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=120.0,
        help="hard wall-clock cap per phase; a hung run fails fast with "
        "a diagnostic dump (0 disables)",
    )
    parser.add_argument("--out", default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    timeout_s = args.timeout_s if args.timeout_s > 0 else None
    common = dict(
        executors=args.executors,
        seed=args.seed,
        rate_tps=args.rate,
        duration_s=args.duration,
        mean_us=args.mean_us,
        drain_s=3.0,
    )
    checks: List[Check] = []
    report: Dict[str, Any] = {"schema": "repro.liveconformance/1", "phases": {}}

    print("phase 1/3: fcfs agreement (sim vs live)")
    fcfs_spec = LiveSpec(policy="fcfs", dist="exponential", **common)
    fcfs_live = timed_run(fcfs_spec, timeout_s)
    fcfs_sim = run_sim(fcfs_spec)
    checks += compare_phase("fcfs", fcfs_spec, fcfs_live, fcfs_sim)
    report["phases"]["fcfs"] = {
        "live": fcfs_live.to_dict(),
        "sim_submitted": fcfs_sim.tasks_submitted,
        "sim_completed": fcfs_sim.tasks_completed,
        "sim_mean_depth": sim_mean_depth(fcfs_sim, fcfs_spec),
    }

    print("phase 2/3: priority agreement (sim vs live)")
    prio_spec = LiveSpec(policy="priority", dist="exponential", **common)
    prio_live = timed_run(prio_spec, timeout_s)
    prio_sim = run_sim(prio_spec)
    checks += compare_phase("priority", prio_spec, prio_live, prio_sim)
    checks.append(
        (
            "priority: zero policy-level inversions",
            prio_live.priority_inversions == 0,
            f"inversions={prio_live.priority_inversions}",
        )
    )
    report["phases"]["priority"] = {
        "live": prio_live.to_dict(),
        "sim_submitted": prio_sim.tasks_submitted,
        "sim_completed": prio_sim.tasks_completed,
        "sim_mean_depth": sim_mean_depth(prio_sim, prio_spec),
    }

    print("phase 3/3: live throughput (closed-loop no-op probe)")
    tput_spec = LiveSpec(
        executors=args.executors,
        seed=args.seed,
        mode="closed",
        dist="noop",
        duration_s=max(args.duration, 0.8),
        tasks_per_job=32,
        outstanding_jobs=8,
        max_outstanding=4,
        drain_s=3.0,
    )
    tput_live = timed_run(tput_spec, timeout_s)
    checks.append(
        (
            "throughput: conservation",
            tput_live.conserved,
            f"lost={tput_live.tasks_lost} phantom={tput_live.phantoms}",
        )
    )
    checks.append(
        (
            f"throughput: >= {args.min_tps:.0f} tasks/sec",
            tput_live.throughput_tps >= args.min_tps,
            f"measured={tput_live.throughput_tps:.0f}tps",
        )
    )
    report["phases"]["throughput"] = {"live": tput_live.to_dict()}

    print()
    failed = 0
    for name, ok, detail in checks:
        mark = "ok  " if ok else "FAIL"
        failed += 0 if ok else 1
        print(f"  {mark} {name:<38} {detail}")
    print()
    print("live latency (wall clock, fcfs phase):")
    for row in fcfs_live.rows():
        print(f"  {row}")

    report["checks"] = [
        {"name": name, "ok": ok, "detail": detail}
        for name, ok, detail in checks
    ]
    report["passed"] = failed == 0
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2))
        print(f"\nwrote {path}")

    if failed:
        print(f"\nconformance FAILED ({failed}/{len(checks)} checks)")
        return 1
    print(f"\nconformance passed ({len(checks)} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
