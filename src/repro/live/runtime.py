"""Stand up a full live cluster in one event loop and run a workload.

:class:`LiveSpec` is the single description both sides of a conformance
comparison consume: :meth:`LiveSpec.events` materializes the workload
through :func:`repro.workloads.synthetic.open_loop` from the spec's seed,
and :meth:`LiveSpec.sim_config` maps the same parameters onto a
:class:`~repro.experiments.common.ClusterConfig` — same policy object,
same queue capacity, same arrival times, durations and priorities.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.policies import Policy, PriorityPolicy
from repro.errors import ConfigurationError, LiveTimeoutError
from repro.experiments.common import ClusterConfig
from repro.live.client import LiveClient
from repro.live.executor import LiveExecutor, LiveExecutorConfig
from repro.live.loadgen import ClosedLoopGen, OpenLoopGen
from repro.live.results import LiveResult
from repro.live.softswitch import SoftSwitch
from repro.obs.hdr import LogHistogram
from repro.sim.rng import RngStreams
from repro.workloads import synthetic

DISTRIBUTIONS = ("fixed", "bimodal", "trimodal", "exponential", "heavy", "noop")


@dataclass
class LiveSpec:
    """One live-cluster configuration plus its workload."""

    executors: int = 4
    policy: str = "fcfs"  # "fcfs" | "priority"
    priority_levels: int = 4
    queue_capacity: int = 4096
    seed: int = 42
    mode: str = "open"  # "open" | "closed"
    rate_tps: float = 1000.0
    duration_s: float = 1.0
    tasks_per_job: int = 2
    outstanding_jobs: int = 8  # closed loop
    dist: str = "exponential"
    mean_us: float = 250.0
    #: per-executor JBSQ-style bound (pulls + running tasks)
    max_outstanding: int = 2
    drain_s: float = 3.0
    time_scale: float = 1.0

    def validate(self) -> None:
        if self.policy not in ("fcfs", "priority"):
            raise ConfigurationError(f"unknown live policy {self.policy!r}")
        if self.mode not in ("open", "closed"):
            raise ConfigurationError(f"unknown live mode {self.mode!r}")
        if self.dist not in DISTRIBUTIONS:
            raise ConfigurationError(
                f"unknown distribution {self.dist!r}; one of {DISTRIBUTIONS}"
            )
        if self.executors < 1 or self.duration_s <= 0:
            raise ConfigurationError("need executors >= 1 and duration > 0")

    # -- shared workload description ---------------------------------------

    def policy_obj(self) -> Optional[Policy]:
        if self.policy == "priority":
            return PriorityPolicy(self.priority_levels)
        return None

    def sampler(self) -> Optional[synthetic.DurationSampler]:
        if self.dist == "noop":
            return None
        if self.dist == "fixed":
            return synthetic.fixed(self.mean_us)
        if self.dist == "bimodal":
            return synthetic.bimodal()
        if self.dist == "trimodal":
            return synthetic.trimodal()
        if self.dist == "heavy":
            return synthetic.heavy_tailed(self.mean_us)
        return synthetic.exponential(self.mean_us)

    def tprops_for(
        self,
    ) -> Optional[Callable[[np.random.Generator, int], int]]:
        if self.policy != "priority":
            return None
        levels = self.priority_levels

        def draw(rng: np.random.Generator, _duration_ns: int) -> int:
            return int(rng.integers(1, levels + 1))

        return draw

    def events(self, rngs: RngStreams) -> List[synthetic.SubmitEvent]:
        """The open-loop schedule; deterministic in ``rngs``' seed.

        Both the live load generator and the simulator counterpart call
        this with ``RngStreams(spec.seed)``, so the two runs see the
        same jobs at the same offsets with the same durations.
        """
        sampler = self.sampler()
        if sampler is None:
            raise ConfigurationError("open-loop mode needs a duration dist")
        return list(
            synthetic.open_loop(
                rngs.stream("arrivals"),
                rate_tps=self.rate_tps,
                duration_sampler=sampler,
                horizon_ns=int(self.duration_s * 1e9),
                tasks_per_job=self.tasks_per_job,
                tprops_for=self.tprops_for(),
            )
        )

    def sim_config(self) -> ClusterConfig:
        """The simulator configuration matching this live spec."""
        return ClusterConfig(
            scheduler="draconis",
            workers=self.executors,
            executors_per_worker=1,
            seed=self.seed,
            policy=self.policy_obj(),
            queue_capacity=self.queue_capacity,
            record_queue_delays=True,
            queues_in_stages=True,
            park_pulls=True,
        )

    def describe(self) -> dict:
        return asdict(self)


async def run_live_async(
    spec: LiveSpec, timeout_s: Optional[float] = None
) -> LiveResult:
    """Run one spec end to end on localhost; everything in this loop.

    ``timeout_s`` is a *hard* wall-clock cap on the whole run. A live run
    that hangs — a drain that never quiesces, an executor wedged on a
    dead socket — raises :class:`LiveTimeoutError` carrying a component
    diagnostic dump, instead of eating the CI job timeout.
    """
    spec.validate()
    rngs = RngStreams(spec.seed)
    switch = SoftSwitch(
        policy=spec.policy_obj(), queue_capacity=spec.queue_capacity
    )
    await switch.start()
    executors = [
        LiveExecutor(
            executor_id=i,
            switch=switch.endpoint,
            config=LiveExecutorConfig(
                max_outstanding=spec.max_outstanding,
                time_scale=spec.time_scale,
            ),
            node_id=i,
        )
        for i in range(spec.executors)
    ]
    client = LiveClient(
        uid=0, clock=switch.sim, rng=rngs.stream("live-client")
    )

    async def drive() -> LiveResult:
        for executor in executors:
            await executor.start()
        await asyncio.gather(
            *(e.wait_registered(5.0) for e in executors)
        )
        await client.start(switch.endpoint)

        start_ns = switch.sim.now
        max_lag_ns = 0
        if spec.mode == "open":
            gen = OpenLoopGen(client, spec.events(rngs), clock=switch.sim)
            await gen.run()
            max_lag_ns = gen.max_lag_ns
        else:
            closed = ClosedLoopGen(
                client,
                outstanding=spec.outstanding_jobs,
                tasks_per_job=spec.tasks_per_job,
                horizon_s=spec.duration_s,
                sampler=spec.sampler(),
                rng=rngs.stream("closed-loop"),
                tprops_for=spec.tprops_for(),
                clock=switch.sim,
            )
            await closed.run()
        await client.drain(spec.drain_s)
        wall_ns = switch.sim.now - start_ns
        return _collect(spec, switch, executors, client, wall_ns, max_lag_ns)

    try:
        if timeout_s is None:
            return await drive()
        try:
            return await asyncio.wait_for(drive(), timeout_s)
        except asyncio.TimeoutError:
            raise LiveTimeoutError(
                f"live run exceeded the {timeout_s}s hard cap\n"
                + diagnostic_dump(switch, executors, client)
            ) from None
    finally:
        await client.aclose()
        for executor in executors:
            await executor.aclose()
        switch.close()
        # Let transport close callbacks run before the loop is torn down.
        await asyncio.sleep(0)


def diagnostic_dump(
    switch: SoftSwitch,
    executors: List[LiveExecutor],
    client: LiveClient,
) -> str:
    """Where a hung run was stuck, one component per line."""
    lines = [
        "switch: queued="
        + str(switch.total_queued())
        + f" executors={len(switch.executors)} {dict(switch.counters)}",
    ]
    for record in switch.executors.values():
        lines.append(
            f"  exec{record.executor_id}: epoch={record.epoch}"
            f" in_flight={record.in_flight}/{record.max_outstanding}"
        )
    for executor in executors:
        lines.append(
            f"executor {executor.executor_id}: closed={executor.closed}"
            f" {dict(executor.counters)}"
        )
    lines.append(
        f"client: pending={client.pending_count}"
        f" done={client.completed_count} gave_up={client.gave_up_count}"
        f" {dict(client.counters)}"
    )
    return "\n".join(lines)


def _collect(
    spec: LiveSpec,
    switch: SoftSwitch,
    executors: List[LiveExecutor],
    client: LiveClient,
    wall_ns: int,
    max_lag_ns: int,
) -> LiveResult:
    queue_delay = LogHistogram()
    for _queue_index, delay_ns in switch.queue_delays:
        queue_delay.record(delay_ns)
    service = LogHistogram()
    executor_counters: dict = {}
    for executor in executors:
        service.merge(executor.service_hist)
        for name, value in executor.counters.items():
            executor_counters[name] = executor_counters.get(name, 0) + value
    wall_s = wall_ns / 1e9
    completed = client.completed_count
    return LiveResult(
        spec=spec.describe(),
        wall_s=wall_s,
        tasks_submitted=client.tasks_submitted,
        tasks_completed=completed,
        tasks_lost=client.lost_count,
        duplicates=client.counters.get("duplicates", 0),
        phantoms=client.counters.get("phantoms", 0),
        resubmits=client.counters.get("resubmits", 0),
        bounce_give_ups=client.counters.get("bounce_give_ups", 0),
        timeout_give_ups=client.counters.get("timeout_give_ups", 0),
        throughput_tps=completed / wall_s if wall_s > 0 else 0.0,
        priority_inversions=switch.priority_inversions,
        e2e=client.e2e_hist,
        queue_delay=queue_delay,
        service=service,
        sched_stats=asdict_ints(switch.sched_stats),
        switch_counters=dict(switch.counters),
        executor_counters=executor_counters,
        client_counters=dict(client.counters),
        max_loadgen_lag_ns=max_lag_ns,
    )


def asdict_ints(stats) -> dict:
    return {k: int(v) for k, v in asdict(stats).items()}


def run_live(spec: LiveSpec, timeout_s: Optional[float] = None) -> LiveResult:
    """Synchronous wrapper: one fresh event loop per run."""
    return asyncio.run(run_live_async(spec, timeout_s=timeout_s))
