"""Replicated live controllers: leader election over real UDP.

The simulator's replicated control plane (``repro.ctrl.replication``)
elects a leader through the switch's :class:`~repro.switchsim.election.
ElectionRegister` and replicates state leader->follower with
``ControllerSync``. This module ports the *protocol* onto real sockets:

* :class:`LiveControllerReplica` is an asyncio UDP endpoint that sends
  ``ElectionRequest`` datagrams to the :class:`~repro.live.softswitch.
  SoftSwitch` (whose program arbitrates them against ``switch.election``
  — the exact code path the simulator exercises), renews its lease while
  leading, and polls for takeover while following.
* The leader drains a :class:`~repro.ctrl.replication.CtrlJournal` into
  chunked ``ControllerSync`` datagrams to its peers on a fixed cadence;
  followers track ``(term, seq)`` and flag gaps exactly as the simulated
  follower does.

What is *not* ported: the live control plane replicates leadership
metadata (term tenure, checkpoint counters) rather than the scheduler's
in-flight assignment mirror — the live switch owns executor liveness
itself (pull TTLs, credit resync), so there is no lease table for a live
controller to reclaim from. The full state-machine replication semantics
are verified in simulation; the live layer verifies the part wall clocks
can falsify — election safety (one leader per term, monotonic terms,
takeover after a leader kill) and the sync wire protocol under chaos.

Like every live component, the cadence knobs are wall-clock values tuned
for loopback CI: a lease of tens of milliseconds, comfortably above an
event-loop tick and below the chaos settle window.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.ctrl.replication import CtrlJournal, CtrlOpKind
from repro.errors import ProtocolError
from repro.live.base import Counters, Endpoint, WallClock, bump_socket_buffers
from repro.protocol import codec
from repro.protocol.codec import MAX_CTRL_OPS_PER_PACKET
from repro.protocol.messages import (
    ControllerSync,
    CtrlOp,
    ElectionAck,
    ElectionRequest,
)

DEFAULT_LIVE_CTRL_LEASE_NS = 50_000_000
"""50 ms leadership lease: several election round trips fit inside it on
loopback, and a leader kill is detected well inside the 2 s settle."""

DEFAULT_LIVE_RENEW_MARGIN_NS = 15_000_000
"""The leader renews this long before its lease lapses."""

DEFAULT_LIVE_POLL_NS = 10_000_000
"""Follower takeover poll cadence."""

DEFAULT_LIVE_STAGGER_NS = 3_000_000
"""Per-replica start offset so the first election has a deterministic
favourite (replica 0) when nothing is faulted."""

DEFAULT_LIVE_SYNC_INTERVAL_NS = 15_000_000
"""Leader -> follower sync flush cadence."""


def ctrl_name(replica_id: int) -> str:
    """The fault-plan node name of one live controller replica."""
    return f"ctrl{replica_id}"


@dataclass
class _ReplicaProtocol(asyncio.DatagramProtocol):
    replica: "LiveControllerReplica"
    transport: Optional[asyncio.DatagramTransport] = field(default=None)

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.replica._on_datagram(data, (addr[0], addr[1]))

    def error_received(self, exc) -> None:
        self.replica.counters.incr("socket_errors")


class LiveControllerReplica:
    """One controller replica on a real UDP socket.

    The election loop is RNG-free — fixed poll periods plus a per-replica
    start stagger — so the leader sequence is a function of the crash
    schedule and wall-clock interleaving, with no seeded draws to keep
    stable (mirrors the simulated replica's design).
    """

    def __init__(
        self,
        replica_id: int,
        switch: Endpoint,
        clock: Optional[WallClock] = None,
        lease_ns: int = DEFAULT_LIVE_CTRL_LEASE_NS,
        renew_margin_ns: int = DEFAULT_LIVE_RENEW_MARGIN_NS,
        poll_ns: int = DEFAULT_LIVE_POLL_NS,
        stagger_ns: int = DEFAULT_LIVE_STAGGER_NS,
        sync_interval_ns: int = DEFAULT_LIVE_SYNC_INTERVAL_NS,
        transport_wrap=None,
    ) -> None:
        self.replica_id = replica_id
        self.switch = switch
        self.clock = clock if clock is not None else WallClock()
        self.lease_ns = lease_ns
        self.renew_margin_ns = min(renew_margin_ns, lease_ns // 2)
        self.poll_ns = poll_ns
        self.stagger_ns = stagger_ns
        self.sync_interval_ns = sync_interval_ns
        self.transport_wrap = transport_wrap
        self.counters = Counters()

        self.role = "follower"
        self.term = 0
        self.known_term = 0
        self.elections_won = 0
        self.step_downs = 0
        self.sync_sent = 0
        self.sync_applied = 0
        self.sync_gaps = 0
        self.ckpt_meta: Dict[str, int] = {}
        self.journal = CtrlJournal()
        self.closed = False

        self.peers: List[Endpoint] = []
        #: when set, called at each flush for the *current* peer
        #: endpoints — restarted peers come back on new ports, so a
        #: static list would sync into dead sockets
        self.peer_resolver: Optional[Any] = None
        self._leader_until = -1
        self._sync_seq = 0
        self._recv_seq = -1
        self._recv_term = 0
        self._gap = True
        self._flushes = 0
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._endpoint: Optional[Endpoint] = None
        self._tasks: List[asyncio.Task] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Endpoint:
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _ReplicaProtocol(self), local_addr=(host, port)
        )
        bump_socket_buffers(transport)
        bound = transport.get_extra_info("sockname")
        if self.transport_wrap is not None:
            transport = self.transport_wrap(transport)
        self._transport = transport
        self._endpoint = (bound[0], bound[1])
        self._tasks.append(loop.create_task(self._election_loop()))
        self._tasks.append(loop.create_task(self._sync_loop()))
        return self._endpoint

    @property
    def endpoint(self) -> Endpoint:
        if self._endpoint is None:
            raise RuntimeError("LiveControllerReplica.start() not awaited")
        return self._endpoint

    def wire_peers(self, peers: List[Endpoint]) -> None:
        """Tell this replica where the other replicas listen."""
        self.peers = [p for p in peers if p != self._endpoint]

    def _peer_endpoints(self) -> List[Endpoint]:
        if self.peer_resolver is not None:
            return [p for p in self.peer_resolver() if p != self._endpoint]
        return self.peers

    def kill(self) -> None:
        """Fail-stop: drop the socket, stop every loop. Idempotent.

        A restarted incarnation is a *new* object on a new socket built
        by the injector's factory; like executors, live controllers do
        not resurrect in place.
        """
        if self.closed:
            return
        self.closed = True
        self.role = "follower"
        self._leader_until = -1
        for task in self._tasks:
            task.cancel()
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    async def aclose(self) -> None:
        tasks = list(self._tasks)
        self.kill()
        for task in tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks.clear()

    # -- election ----------------------------------------------------------

    def is_leader(self) -> bool:
        """Leading *and* inside the lease it was granted.

        The local bound self-demotes a leader that cannot reach the
        switch (partition, switch overload) before a rival can be
        granted the next term — the live analogue of the simulated
        replica's self-demotion rule.
        """
        return (
            not self.closed
            and self.role == "leader"
            and self.clock.now <= self._leader_until
        )

    async def _election_loop(self) -> None:
        await asyncio.sleep(
            (1 + self.replica_id * self.stagger_ns) / 1e9
        )
        while not self.closed:
            self._send_election_request()
            delay_ns = (
                self.lease_ns - self.renew_margin_ns
                if self.role == "leader"
                else self.poll_ns
            )
            await asyncio.sleep(delay_ns / 1e9)

    def _send_election_request(self) -> None:
        term = self.term if self.role == "leader" else self.known_term
        self._last_request_ns = self.clock.now
        self.counters.incr("election_requests")
        self._send(
            self.switch,
            ElectionRequest(
                candidate_id=self.replica_id,
                term=term,
                lease_ns=self.lease_ns,
            ),
        )

    def _on_ack(self, ack: ElectionAck) -> None:
        self.known_term = max(self.known_term, ack.term)
        if ack.granted and ack.leader_id == self.replica_id:
            if ack.term < self.term:
                return  # stale ack from a previous incarnation of us
            newly = self.role != "leader" or ack.term != self.term
            self.term = ack.term
            # Conservative local bound: the register stamped its own
            # arrival clock; request-send time + lease can only be
            # earlier, so the local lease never outlives the granted one
            # even if this replica ran on a different clock.
            self._leader_until = min(
                ack.expires_at_ns,
                getattr(self, "_last_request_ns", self.clock.now)
                + self.lease_ns,
            )
            if newly:
                self._become_leader()
            return
        # Denied (or granted to someone else — cannot happen, acks are
        # unicast): a current or newer term holds the lease.
        if self.role == "leader" and ack.term >= self.term:
            self._step_down()

    def _become_leader(self) -> None:
        self.role = "leader"
        self.elections_won += 1
        self.counters.incr("elections_won")
        self.journal.clear()
        self._sync_seq = 0
        self._flushes = 0
        # First flush of a tenure is a snapshot: followers that missed
        # the term change resync from scratch.
        self._need_snapshot = True
        self.journal.record(
            CtrlOp(kind=int(CtrlOpKind.LEASE), a=self.term, b=self.replica_id)
        )

    def _step_down(self) -> None:
        if self.role != "leader":
            return
        self.role = "follower"
        self._leader_until = -1
        self.step_downs += 1
        self.counters.incr("step_downs")
        self.journal.clear()

    # -- sync --------------------------------------------------------------

    async def _sync_loop(self) -> None:
        while not self.closed:
            await asyncio.sleep(self.sync_interval_ns / 1e9)
            if self.is_leader() and self._peer_endpoints():
                self._flush_sync()

    def _flush_sync(self) -> None:
        ops, _entries, overflowed = self.journal.drain()
        self._flushes += 1
        snapshot = bool(getattr(self, "_need_snapshot", False) or overflowed)
        self._need_snapshot = False
        # Tenure metadata rides every flush so a follower's ckpt_meta
        # mirror converges even when deltas were lost on the wire.
        ops = list(ops) + [
            CtrlOp(
                kind=int(CtrlOpKind.CKPT_META),
                a=self.term,
                b=self.elections_won,
                d=self._flushes,
            )
        ]
        for lo in range(0, len(ops), MAX_CTRL_OPS_PER_PACKET):
            chunk = ops[lo : lo + MAX_CTRL_OPS_PER_PACKET]
            self._sync_seq += 1
            msg = ControllerSync(
                leader_id=self.replica_id,
                term=self.term,
                seq=self._sync_seq,
                snapshot=snapshot and lo == 0,
                ops=chunk,
            )
            for peer in self._peer_endpoints():
                self._send(peer, msg)
                self.sync_sent += 1

    def _on_sync(self, msg: ControllerSync) -> None:
        if msg.leader_id == self.replica_id:
            return
        if msg.term < self._recv_term or msg.term < self.known_term:
            self.counters.incr("stale_sync_dropped")
            return
        self.known_term = max(self.known_term, msg.term)
        if self.role == "leader" and msg.term > self.term:
            self._step_down()
        if msg.term != self._recv_term:
            self._recv_term = msg.term
            self._recv_seq = -1
            self._gap = True
        if msg.snapshot:
            self.ckpt_meta = {}
            self._gap = False
        elif self._recv_seq >= 0 and msg.seq != self._recv_seq + 1:
            self._gap = True
            self.sync_gaps += 1
        self._recv_seq = msg.seq
        for op in msg.ops:
            if op.kind == int(CtrlOpKind.CKPT_META):
                self.ckpt_meta = {
                    "term": op.a,
                    "elections_won": op.b,
                    "flushes": op.d,
                }
        self.sync_applied += 1

    # -- datagram path -----------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Endpoint) -> None:
        if self.closed:
            return
        try:
            message = codec.decode(data)
        except ProtocolError:
            self.counters.incr("malformed")
            return
        cls = message.__class__
        if cls is ElectionAck:
            self._on_ack(message)
        elif cls is ControllerSync:
            self._on_sync(message)
        else:
            self.counters.incr("unexpected_messages")

    def _send(self, addr: Endpoint, payload: Any) -> None:
        if self._transport is None or self._transport.is_closing():
            return
        self._transport.sendto(codec.encode(payload), addr)

    # -- inspection --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "replica_id": self.replica_id,
            "role": self.role,
            "is_leader": self.is_leader(),
            "term": self.term,
            "known_term": self.known_term,
            "elections_won": self.elections_won,
            "step_downs": self.step_downs,
            "sync_sent": self.sync_sent,
            "sync_applied": self.sync_applied,
            "sync_gaps": self.sync_gaps,
            "closed": self.closed,
            "ckpt_meta": dict(self.ckpt_meta),
        }
