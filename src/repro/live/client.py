"""The live submission client: submit, track, retry, account.

Mirrors the simulated :class:`repro.cluster.client.Client` contract on a
real socket: jobs split into codec-limit packets, bounced tasks retry
with capped-exponential backoff (honouring the switch's
``backoff_hint_ns``), and a resubmit watchdog covers outright datagram
loss — UDP on loopback drops silently when a socket buffer overflows, so
the client is the conservation backstop. Task accounting is by unique
``(uid, jid, tid)`` key: resubmit races produce *duplicate* completions
(counted, harmless), never phantoms or losses. Backoff jitter draws from
a seeded RNG stream, never wall-clock entropy, so two runs of the same
seed retry on the same schedule (modulo event-loop timing).
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.cluster.task import FN_SPIN, TaskSpec, encode_duration
from repro.errors import ProtocolError
from repro.live.base import Counters, Endpoint, WallClock, bump_socket_buffers
from repro.obs.hdr import LogHistogram
from repro.protocol import codec
from repro.protocol.messages import (
    Completion,
    ErrorPacket,
    JobSubmission,
    SubmissionAck,
    TaskInfo,
    TaskKey,
)


@dataclass
class LiveClientConfig:
    """Retry and framing knobs."""

    max_tasks_per_packet: int = codec.MAX_TASKS_PER_PACKET
    #: base bounce-retry delay; doubles per retry of the same task.
    bounce_retry_s: float = 0.001
    #: cap on the exponential (2**n doublings of bounce_retry_s).
    bounce_backoff_max: int = 6
    #: ± fraction of jitter on each bounce wait (seeded RNG, not wall
    #: clock), desynchronizing clients that bounced together.
    bounce_jitter: float = 0.2
    #: shared retry budget per task (bounces + loss resubmits).
    max_retries: int = 12
    #: tasks pending longer than this are resubmitted (loss recovery);
    #: None disables the watchdog.
    resubmit_timeout_s: Optional[float] = 1.0


class _Pending:
    __slots__ = ("info", "jid", "submitted_ns", "retries")

    def __init__(self, info: TaskInfo, jid: int, submitted_ns: int) -> None:
        self.info = info
        self.jid = jid
        self.submitted_ns = submitted_ns
        self.retries = 0


class LiveClient(asyncio.DatagramProtocol):
    """One submitting client on a connected UDP socket."""

    def __init__(
        self,
        uid: int = 0,
        config: Optional[LiveClientConfig] = None,
        clock: Optional[WallClock] = None,
        on_job_done: Optional[Callable[[int], None]] = None,
        rng: Optional[np.random.Generator] = None,
        transport_wrap: Optional[Callable] = None,
    ) -> None:
        self.uid = uid
        self.config = config or LiveClientConfig()
        self.clock = clock or WallClock()
        self.on_job_done = on_job_done
        self.rng = rng
        self.transport_wrap = transport_wrap
        self.counters = Counters()
        #: end-to-end latency (submit -> completion notice), nanoseconds
        self.e2e_hist = LogHistogram()
        self._pending: Dict[TaskKey, _Pending] = {}
        self._done: Set[TaskKey] = set()
        self._gave_up: Set[TaskKey] = set()
        self._job_left: Dict[int, int] = {}
        self._next_jid = 0
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._watchdog: Optional[asyncio.Task] = None
        self._timers: Set[asyncio.TimerHandle] = set()
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self, switch: Endpoint) -> None:
        self._loop = asyncio.get_running_loop()
        await self._loop.create_datagram_endpoint(
            lambda: self, remote_addr=switch
        )
        if self.config.resubmit_timeout_s is not None:
            self._watchdog = self._loop.create_task(self._watch())

    def close(self) -> None:
        self._closing = True
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    async def aclose(self) -> None:
        """Close and *await* the watchdog so no task outlives the client.

        Teardown under chaos must not leave cancelled-but-unawaited tasks
        behind — they surface as "Task was destroyed but it is pending"
        warnings when the loop shuts down.
        """
        watchdog = self._watchdog
        self.close()
        if watchdog is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await watchdog

    def connection_made(self, transport) -> None:
        bump_socket_buffers(transport)
        if self.transport_wrap is not None:
            transport = self.transport_wrap(transport)
        self._transport = transport

    def _call_later(self, delay_s: float, fn, *args) -> None:
        """``loop.call_later`` with the handle tracked for teardown."""
        if self._loop is None or self._closing:
            return
        handle: Optional[asyncio.TimerHandle] = None

        def fire() -> None:
            if handle is not None:
                self._timers.discard(handle)
            fn(*args)

        handle = self._loop.call_later(delay_s, fire)
        self._timers.add(handle)

    # -- submission --------------------------------------------------------

    def submit(self, specs: Sequence[TaskSpec]) -> int:
        """Submit one job of ``specs``; returns its jid."""
        jid = self._next_jid
        self._next_jid += 1
        now = self.clock.now
        infos = []
        for tid, spec in enumerate(specs):
            fn_par = (
                encode_duration(spec.duration_ns)
                if spec.fn_id == FN_SPIN and spec.duration_ns > 0
                else b""
            )
            info = TaskInfo(
                tid=tid, fn_id=spec.fn_id, fn_par=fn_par, tprops=spec.tprops
            )
            infos.append(info)
            self._pending[(self.uid, jid, tid)] = _Pending(info, jid, now)
        self._job_left[jid] = len(infos)
        self.counters.incr("jobs_submitted")
        self.counters.incr("tasks_submitted", len(infos))
        self._send_tasks(jid, infos)
        return jid

    def _send_tasks(self, jid: int, infos: Sequence[TaskInfo]) -> None:
        if self._transport is None:
            return
        limit = self.config.max_tasks_per_packet
        for i in range(0, len(infos), limit):
            self._transport.sendto(
                codec.encode(
                    JobSubmission(
                        uid=self.uid, jid=jid, tasks=list(infos[i : i + limit])
                    )
                )
            )
            self.counters.incr("submissions_sent")

    # -- receive -----------------------------------------------------------

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            message = codec.decode(data)
        except ProtocolError:
            self.counters.incr("malformed")
            return
        cls = message.__class__
        if cls is Completion:
            self._on_completion(message)
        elif cls is ErrorPacket:
            self._on_bounce(message)
        elif cls is SubmissionAck:
            self.counters.incr("acks")
        else:
            self.counters.incr("unexpected")

    def error_received(self, exc) -> None:
        self.counters.incr("socket_errors")

    def _on_completion(self, completion: Completion) -> None:
        key = (completion.uid, completion.jid, completion.tid)
        entry = self._pending.pop(key, None)
        if entry is None:
            if key in self._done:
                # A resubmitted task finished twice; by-key accounting
                # keeps conservation exact.
                self.counters.incr("duplicates")
            elif key in self._gave_up:
                # The retry budget ran out, but a copy was already queued
                # and finished anyway (e.g. behind a fault window). The
                # task *did* complete — move it back to done so the loss
                # accounting stays truthful. No latency sample: the
                # give-up discarded its submit timestamp.
                self._gave_up.discard(key)
                self._done.add(key)
                self.counters.incr("late_completions")
            else:
                self.counters.incr("phantoms")
            return
        self._done.add(key)
        self.counters.incr("completed")
        self.e2e_hist.record(self.clock.now - entry.submitted_ns)
        self._job_finished_one(entry.jid)

    def _job_finished_one(self, jid: int) -> None:
        left = self._job_left.get(jid)
        if left is None:
            return
        left -= 1
        if left <= 0:
            del self._job_left[jid]
            if self.on_job_done is not None:
                self.on_job_done(jid)
        else:
            self._job_left[jid] = left

    def _on_bounce(self, error: ErrorPacket) -> None:
        self.counters.incr("bounces")
        retry: List[TaskInfo] = []
        max_retry_round = 0
        for info in error.tasks:
            key = (error.uid, error.jid, info.tid)
            entry = self._pending.get(key)
            if entry is None:
                continue  # completed (or given up) while the bounce flew
            entry.retries += 1
            if entry.retries > self.config.max_retries:
                self._give_up(key, entry, "bounce_give_ups")
                continue
            max_retry_round = max(max_retry_round, entry.retries)
            retry.append(entry.info)
        if not retry or self._loop is None or self._closing:
            return
        exponent = min(max_retry_round - 1, self.config.bounce_backoff_max)
        delay_s = self.config.bounce_retry_s * (1 << exponent)
        if self.rng is not None and self.config.bounce_jitter > 0:
            jitter = self.config.bounce_jitter
            delay_s *= 1.0 + float(self.rng.uniform(-jitter, jitter))
        delay_s = max(delay_s, error.backoff_hint_ns / 1e9)
        self.counters.incr("bounce_retries", len(retry))
        self._call_later(delay_s, self._send_tasks, error.jid, retry)

    def _give_up(self, key: TaskKey, entry: _Pending, reason: str) -> None:
        del self._pending[key]
        self._gave_up.add(key)
        self.counters.incr("give_ups")
        self.counters.incr(reason)
        self._job_finished_one(entry.jid)

    # -- loss recovery -----------------------------------------------------

    async def _watch(self) -> None:
        timeout_s = self.config.resubmit_timeout_s
        assert timeout_s is not None
        timeout_ns = int(timeout_s * 1e9)
        while not self._closing:
            await asyncio.sleep(timeout_s / 4)
            now = self.clock.now
            stale: Dict[int, List[TaskInfo]] = {}
            for key, entry in list(self._pending.items()):
                if now - entry.submitted_ns < timeout_ns * (entry.retries + 1):
                    continue
                entry.retries += 1
                if entry.retries > self.config.max_retries:
                    self._give_up(key, entry, "timeout_give_ups")
                    continue
                stale.setdefault(entry.jid, []).append(entry.info)
            for jid, infos in stale.items():
                self.counters.incr("resubmits", len(infos))
                self._send_tasks(jid, infos)

    # -- accounting --------------------------------------------------------

    @property
    def tasks_submitted(self) -> int:
        return self.counters.get("tasks_submitted", 0)

    @property
    def completed_count(self) -> int:
        return len(self._done)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def gave_up_count(self) -> int:
        return len(self._gave_up)

    @property
    def lost_count(self) -> int:
        """Tasks neither completed nor still being retried."""
        return len(self._gave_up) + len(self._pending)

    def pending_keys(self) -> Set[TaskKey]:
        return set(self._pending)

    def gave_up_keys(self) -> Set[TaskKey]:
        return set(self._gave_up)

    async def drain(self, timeout_s: float) -> int:
        """Wait for the pending set to empty; returns what is left."""
        deadline = self.clock.now + int(timeout_s * 1e9)
        while self._pending and self.clock.now < deadline:
            await asyncio.sleep(0.01)
        return len(self._pending)
