"""Live chaos fuzzing: seeded fault scenarios against real sockets.

    python -m repro.live.fuzz --seed 42 --runs 10

Each run derives one :class:`~repro.live.chaos.ChaosScenario` from
``base seed + run index`` — a workload, a fault plan from the live chaos
grammar (loss, duplication, reorder jitter, corruption, blackouts,
executor kill/restart, switch failover), and the knobs that make the
scenario recoverable — executes it on loopback UDP, and judges the run
with the :class:`~repro.verify.live_oracle.LiveInvariantOracle`. A
failing run is saved as a versioned JSON artifact
(:func:`repro.verify.artifact.save_live_artifact`) for diagnosis.

Unlike the simulator fuzzer, a live failure replays the *decisions*
deterministically (same plan, same RNG draws) but not the wall-clock
interleaving, so artifacts pin the scenario and record the observed
evidence rather than promising bit-identical reproduction (DESIGN.md
§9.4).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.errors import LiveTimeoutError
from repro.live.chaos import run_live_chaos, sample_scenario
from repro.verify.artifact import save_live_artifact

DEFAULT_TIMEOUT_S = 60.0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42, help="base seed")
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument(
        "--max-events", type=int, default=5, help="fault events per plan"
    )
    parser.add_argument(
        "--duration", type=float, default=0.3, help="workload seconds per run"
    )
    parser.add_argument(
        "--controller-replicas",
        type=int,
        default=None,
        help="pin the live control plane size (0 disables, >= 2 "
        "replicates); default samples the toggle per seed",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=DEFAULT_TIMEOUT_S,
        help="hard wall-clock cap per run (0 disables)",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="write failing runs here as replay artifacts",
    )
    parser.add_argument("--out", default=None, help="write summary JSON here")
    args = parser.parse_args(argv)

    timeout_s = args.timeout_s if args.timeout_s > 0 else None
    artifact_dir = (
        pathlib.Path(args.artifact_dir) if args.artifact_dir else None
    )
    if artifact_dir is not None:
        artifact_dir.mkdir(parents=True, exist_ok=True)

    print(
        f"live chaos fuzz: {args.runs} run(s), base seed {args.seed}, "
        f"<= {args.max_events} fault events each"
    )
    started = time.monotonic()
    failures = 0
    summary = []
    for index in range(args.runs):
        seed = args.seed + index
        scenario = sample_scenario(
            seed,
            max_events=args.max_events,
            duration_s=args.duration,
            controller_replicas=args.controller_replicas,
        )
        try:
            run = run_live_chaos(scenario, timeout_s=timeout_s)
        except LiveTimeoutError as exc:
            failures += 1
            print(f"seed={seed:<6d} TIMEOUT")
            print(f"  {exc}")
            summary.append(
                {"seed": seed, "ok": False, "timeout": True}
            )
            continue
        print(run.row())
        if not run.ok:
            failures += 1
            for violation in run.violations:
                print(f"  ! {violation}")
            print(f"  plan: {scenario.plan().describe()}")
            if artifact_dir is not None:
                path = artifact_dir / f"live_chaos_seed{seed}.json"
                save_live_artifact(run, str(path))
                print(f"  artifact: {path}")
        summary.append(
            {
                "seed": seed,
                "ok": run.ok,
                "violations": [
                    {"invariant": v.invariant, "detail": v.detail}
                    for v in run.violations
                ],
                "kinds": list(run.kinds()),
                "tasks_submitted": run.result.tasks_submitted,
                "tasks_completed": run.result.tasks_completed,
                "tasks_lost": run.result.tasks_lost,
                "duplicates": run.result.duplicates,
                "resubmits": run.result.resubmits,
                "reregistrations": run.reregistrations,
                "controller_replicas": scenario.controller_replicas,
                "ctrl": run.ctrl,
                "injected": run.injected,
                "checks": run.checks,
                "wall_s": run.wall_s,
            }
        )

    elapsed = time.monotonic() - started
    print()
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.livefuzz/1",
                    "base_seed": args.seed,
                    "runs": args.runs,
                    "failures": failures,
                    "elapsed_s": elapsed,
                    "results": summary,
                },
                indent=2,
            )
        )
        print(f"wrote {path}")
    if failures:
        print(
            f"live chaos fuzz FAILED: {failures}/{args.runs} run(s) "
            f"violated invariants ({elapsed:.1f}s)"
        )
        return 1
    print(
        f"live chaos fuzz passed: {args.runs}/{args.runs} run(s) clean "
        f"({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
