"""The software dataplane: a DraconisProgram behind a real UDP socket.

:class:`SoftSwitch` plays the role the programmable switch plays in the
simulator, with the *same* program object — the scheduler logic, circular
queues, policies and register-access discipline are shared code, not a
reimplementation. The switch shim supplies the three things the program
reads from its host (``sim.now``, ``obs``, ``recirc_backlog_fraction``)
and maps the program's traversal actions onto datagrams:

* ``Reply`` → encode and send to the destination endpoint;
* ``Recirculate`` → re-process inline with a fresh
  :class:`~repro.switchsim.registers.PacketContext` (a software
  recirculation port with a bounded chain budget);
* ``Drop`` / ``Forward`` → counted (there is no fabric behind the soft
  switch to forward into).

On top of the program, the switch owns the live-only concerns the
simulator models implicitly: executor registration/liveness
(:class:`~repro.protocol.messages.ExecutorRegister` → registry + epoch),
JBSQ-style bounded dispatch (at most ``max_outstanding`` assignments in
flight per executor), and the priority-inversion probe the conformance
harness asserts on.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.core.policies import Policy, PriorityPolicy
from repro.core.scheduler import DraconisProgram
from repro.ctrl.degradation import DegradationPolicy
from repro.errors import ProtocolError
from repro.live.base import Counters, Endpoint, WallClock, bump_socket_buffers
from repro.net.packet import Address, Packet
from repro.protocol import codec
from repro.protocol.messages import (
    Completion,
    ExecutorRegister,
    Heartbeat,
    NoOpTask,
    RegisterAck,
    TaskAssignment,
    TaskRequest,
)
from repro.switchsim.election import ElectionRegister
from repro.switchsim.pipeline import Drop, Recirculate, Reply
from repro.switchsim.registers import PacketContext

DEFAULT_PULL_TTL_NS = 50_000_000
"""Parked pulls expire after 50 ms of wall time — comfortably above one
event-loop tick, comfortably below the executors' re-poll watchdog."""

CREDIT_RESYNC_NS = 250_000_000
"""A bound-saturated executor that has not been assigned anything for
this long gets its credit reset: an assignment or completion datagram was
lost and the in-flight count leaked (see ``_on_request_bound``)."""

MAX_CHAIN = 4096
"""Inline recirculation budget per ingress datagram (a 32-task
submission chains 31 recirculations plus parked-pull wakes; real
recirculation ports are similarly bounded)."""


@dataclass
class ExecutorRecord:
    """Registry entry for one live executor."""

    executor_id: int
    endpoint: Endpoint
    node_id: int
    rack_id: int
    max_outstanding: int
    epoch: int = 1
    in_flight: int = 0
    last_seen_ns: int = 0
    last_assign_ns: int = 0


@dataclass
class _SwitchProtocol(asyncio.DatagramProtocol):
    switch: "SoftSwitch"
    transport: Optional[asyncio.DatagramTransport] = field(default=None)

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.switch._on_datagram(data, (addr[0], addr[1]))

    def error_received(self, exc) -> None:
        self.switch.counters.incr("socket_errors")


class SoftSwitch:
    """UDP dataplane hosting an unmodified :class:`DraconisProgram`."""

    def __init__(
        self,
        policy: Optional[Policy] = None,
        queue_capacity: int = 4096,
        park_pulls: bool = True,
        pull_ttl_ns: int = DEFAULT_PULL_TTL_NS,
        degradation: Optional[DegradationPolicy] = None,
        obs=None,
        max_chain: int = MAX_CHAIN,
        transport_wrap: Optional[Callable] = None,
    ) -> None:
        # The program reads its host through three attributes; this object
        # satisfies all of them (sim/obs here, recirc_backlog_fraction
        # below), so attach() binds the live switch like a simulated one.
        self.sim = WallClock()
        self.obs = obs
        self.counters = Counters()
        # Kept so standby_program() can build an identically-configured
        # replacement for checkpoint failover.
        self._program_kwargs = dict(
            policy=policy,
            queue_capacity=queue_capacity,
            record_queue_delays=True,
            # One traversal walks the whole priority ladder (the Tofino 2
            # stage layout): an assignment can never be emitted while a
            # strictly-higher queue still holds a task, which is what
            # makes the conformance harness's inversion count structural.
            queues_in_stages=True,
            park_pulls=park_pulls,
            pull_ttl_ns=pull_ttl_ns,
            degradation=degradation,
        )
        self.program = DraconisProgram(**self._program_kwargs)
        self.program.attach(self)  # type: ignore[arg-type]
        self.max_chain = max_chain
        self.transport_wrap = transport_wrap
        self.priority_inversions = 0
        self._inversion_probe = isinstance(policy, PriorityPolicy)
        # Leadership arbitration for replicated live controllers
        # (repro.live.ctrlplane). Same register class as the simulated
        # switch; ElectionRequest datagrams reach it through the program's
        # normal traversal path, and it survives install_program because
        # it lives on the switch object, not the program.
        self.election = ElectionRegister()
        self.executors: Dict[int, ExecutorRecord] = {}
        #: every epoch ever acked, per executor id, in ack order — the
        #: live oracle asserts each sequence is strictly increasing.
        self.epoch_history: Dict[int, List[int]] = {}
        self._by_endpoint: Dict[Endpoint, ExecutorRecord] = {}
        self._install_hooks: List[Callable] = []
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._service_address: Optional[Address] = None

    # -- switch-shim surface the program reads ----------------------------

    def recirc_backlog_fraction(self) -> float:
        """Inline recirculation has no backlog queue to fill."""
        return 0.0

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Endpoint:
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _SwitchProtocol(self), local_addr=(host, port)
        )
        bump_socket_buffers(transport)
        bound = transport.get_extra_info("sockname")
        if self.transport_wrap is not None:
            transport = self.transport_wrap(transport)
        self._transport = transport
        self._service_address = Address(bound[0], bound[1])
        return (bound[0], bound[1])

    @property
    def endpoint(self) -> Endpoint:
        if self._service_address is None:
            raise RuntimeError("SoftSwitch.start() has not been awaited")
        return (self._service_address.node, self._service_address.port)

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # -- failover ----------------------------------------------------------

    def standby_program(self) -> DraconisProgram:
        """A cold standby configured identically to the active program.

        The standby is *empty*; :class:`~repro.ctrl.checkpoint.
        CheckpointManager` install hooks replay checkpoint + journal into
        it during :meth:`install_program`, which is what makes a live
        SwitchFailover lose zero queued tasks.
        """
        return DraconisProgram(**self._program_kwargs)

    def add_install_hook(self, hook: Callable) -> None:
        """Register ``hook(new_program, old_program)`` run on failover.

        Mirrors :meth:`repro.switchsim.pipeline.ProgrammableSwitch.
        add_install_hook` so ``ctrl.CheckpointManager`` binds to the live
        switch unmodified.
        """
        self._install_hooks.append(hook)

    def install_program(self, program: DraconisProgram) -> DraconisProgram:
        """Swap the scheduler program in place (live SwitchFailover).

        The datagram handler chain is serial, so from the dataplane's
        perspective the swap is atomic: every traversal runs entirely
        against one program. Returns the displaced program.
        """
        old = self.program
        program.attach(self)  # type: ignore[arg-type]
        self.program = program
        self.counters.incr("failovers")
        for hook in self._install_hooks:
            hook(program, old)
        return old

    # -- datagram path -----------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Endpoint) -> None:
        self.counters.incr("rx")
        try:
            message = codec.decode(data)
        except ProtocolError:
            self.counters.incr("malformed")
            return
        cls = message.__class__
        if cls is ExecutorRegister:
            self._on_register(message, addr)
            return
        if cls is Heartbeat:
            record = self.executors.get(message.executor_id)
            if record is not None:
                record.last_seen_ns = self.sim.now
            self.counters.incr("heartbeats")
            return
        if cls is Completion:
            record = self.executors.get(message.executor_id)
            if record is not None:
                record.last_seen_ns = self.sim.now
                if record.in_flight > 0:
                    record.in_flight -= 1
        elif cls is TaskRequest and self._on_request_bound(message, addr):
            return
        packet = Packet(
            src=Address(addr[0], addr[1]),
            dst=self._service_address,
            payload=message,
            size=len(data),
        )
        self._run(packet)

    def _on_register(self, msg: ExecutorRegister, addr: Endpoint) -> None:
        record = self.executors.get(msg.executor_id)
        if record is None:
            record = ExecutorRecord(
                executor_id=msg.executor_id,
                endpoint=addr,
                node_id=msg.node_id,
                rack_id=msg.rack_id,
                max_outstanding=max(1, msg.max_outstanding),
            )
            self.executors[msg.executor_id] = record
        else:
            # Re-registration = a new incarnation (restart or a lost ack
            # retry): bump the epoch, forget stale credit, and move the
            # endpoint in case the executor came back on a new port.
            self._by_endpoint.pop(record.endpoint, None)
            record.endpoint = addr
            record.node_id = msg.node_id
            record.rack_id = msg.rack_id
            record.max_outstanding = max(1, msg.max_outstanding)
            record.epoch += 1
            record.in_flight = 0
        record.last_seen_ns = self.sim.now
        self._by_endpoint[addr] = record
        self.epoch_history.setdefault(msg.executor_id, []).append(record.epoch)
        self.counters.incr("registrations")
        self._send(
            addr,
            RegisterAck(
                executor_id=msg.executor_id, epoch=record.epoch, accepted=True
            ),
        )

    def _on_request_bound(self, request: TaskRequest, addr: Endpoint) -> bool:
        """JBSQ-style dispatch bound; True when the pull was absorbed.

        A registered executor with ``max_outstanding`` assignments already
        in flight gets a no-op instead of a queue access. Credit leaks
        (an assignment or completion datagram lost on the floor) self-heal
        after :data:`CREDIT_RESYNC_NS` without traffic.
        """
        record = self.executors.get(request.executor_id)
        if record is None:
            self.counters.incr("unregistered_pulls")
            return False
        now = self.sim.now
        record.last_seen_ns = now
        if record.in_flight < record.max_outstanding:
            return False
        if now - record.last_assign_ns > CREDIT_RESYNC_NS:
            record.in_flight = 0
            self.counters.incr("credit_resyncs")
            return False
        self.counters.incr("bounded_rejects")
        self._send(addr, NoOpTask())
        return True

    def _run(self, packet: Packet) -> None:
        """One ingress datagram = one traversal chain.

        Recirculations re-enter through a bounded deque with a fresh
        :class:`PacketContext` each, exactly like the simulator's
        recirculation port — the one-access-per-register-array constraint
        is enforced here too, on real traffic.
        """
        program = self.program
        counters = self.counters
        chain: Deque[Packet] = deque((packet,))
        budget = self.max_chain
        while chain:
            if budget <= 0:
                counters.incr("chain_overflows", len(chain))
                break
            budget -= 1
            pkt = chain.popleft()
            ctx = PacketContext(pkt)
            for action in program.process(ctx, pkt):
                acls = action.__class__
                if acls is Reply:
                    self._emit(action.dst, action.payload)
                elif acls is Recirculate:
                    counters.incr("recirculations")
                    chain.append(action.packet)
                elif acls is Drop:
                    counters.incr("program_drops")
                else:  # Forward: nothing routable behind the soft switch
                    counters.incr("forwards_dropped")

    def _emit(self, dst: Address, payload) -> None:
        if payload.__class__ is TaskAssignment:
            record = self._by_endpoint.get((dst.node, dst.port))
            if record is not None:
                record.in_flight += 1
                record.last_assign_ns = self.sim.now
            self.counters.incr("assignments")
            if self._inversion_probe:
                self._check_inversion(payload)
        self._send((dst.node, dst.port), payload)

    def _check_inversion(self, assignment: TaskAssignment) -> None:
        """Priority-ordering probe, run on every assignment.

        Under :class:`PriorityPolicy` the task's tprops word *is* its
        level (1 = highest). The handler chain is serial, so occupancy
        observed here is exactly what the traversal that produced the
        assignment saw: any task still queued strictly above the
        assigned level is a policy-level inversion.
        """
        level = assignment.task.tprops
        if level <= 1:
            return
        queues = self.program.queues
        for queue in queues[: min(level - 1, len(queues))]:
            if queue.approx_occupancy() > 0:
                self.priority_inversions += 1
                self.counters.incr("priority_inversions")
                return

    def _send(self, addr: Endpoint, payload) -> None:
        if self._transport is None:
            return
        self._transport.sendto(codec.encode(payload), addr)
        self.counters.incr("tx")

    # -- inspection --------------------------------------------------------

    @property
    def sched_stats(self):
        return self.program.sched_stats

    @property
    def queue_delays(self):
        return self.program.queue_delays

    def total_queued(self) -> int:
        return self.program.total_queued()
