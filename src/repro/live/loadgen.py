"""Load generation for the live runtime: open loop and closed loop.

Open loop replays a precomputed :class:`SubmitEvent` schedule — the very
same list :func:`repro.workloads.synthetic.open_loop` yields for the
simulator from the same seed, which is what makes sim-vs-live runs
comparable event-for-event. Closed loop keeps a fixed number of jobs
outstanding (the Fig. 5b-style throughput probe: each completed job
immediately triggers the next), so the scheduler, not the arrival
process, is the bottleneck.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.cluster.task import FN_NOOP, SubmitEvent, TaskSpec
from repro.live.base import Counters, WallClock
from repro.live.client import LiveClient
from repro.workloads.synthetic import DurationSampler

#: below this much lead time, submit now instead of sleeping — asyncio
#: timers on epoll cannot resolve finer anyway.
MIN_SLEEP_NS = 500_000


class OpenLoopGen:
    """Replay a submit-event schedule against the wall clock."""

    def __init__(
        self,
        client: LiveClient,
        events: Sequence[SubmitEvent],
        clock: Optional[WallClock] = None,
    ) -> None:
        self.client = client
        self.events = list(events)
        self.clock = clock or client.clock
        self.counters = Counters()
        self.max_lag_ns = 0

    async def run(self) -> None:
        start = self.clock.now
        for event in self.events:
            lag_ns = (self.clock.now - start) - event.time_ns
            if lag_ns < -MIN_SLEEP_NS:
                await asyncio.sleep(-lag_ns / 1e9)
            elif lag_ns > self.max_lag_ns:
                # Behind schedule (a slow tick, a spin burst): submit
                # immediately and record how late the generator ran.
                self.max_lag_ns = lag_ns
            self.client.submit(event.tasks)
            self.counters.incr("jobs")
            self.counters.incr("tasks", len(event.tasks))


class ClosedLoopGen:
    """Keep ``outstanding`` jobs in flight until the horizon passes."""

    def __init__(
        self,
        client: LiveClient,
        outstanding: int = 8,
        tasks_per_job: int = 32,
        horizon_s: float = 1.0,
        sampler: Optional[DurationSampler] = None,
        rng: Optional[np.random.Generator] = None,
        tprops_for: Optional[Callable[[np.random.Generator, int], int]] = None,
        clock: Optional[WallClock] = None,
    ) -> None:
        """``sampler=None`` submits zero-duration FN_NOOP tasks (the
        throughput probe); otherwise durations draw from ``sampler(rng)``
        like the simulator's workload generators."""
        self.client = client
        self.outstanding = outstanding
        self.tasks_per_job = tasks_per_job
        self.horizon_s = horizon_s
        self.sampler = sampler
        self.rng = rng
        self.tprops_for = tprops_for
        self.clock = clock or client.clock
        self.counters = Counters()
        self._done: asyncio.Queue = asyncio.Queue()

    def _job_specs(self) -> List[TaskSpec]:
        if self.sampler is None:
            return [
                TaskSpec(duration_ns=0, fn_id=FN_NOOP)
                for _ in range(self.tasks_per_job)
            ]
        assert self.rng is not None
        specs = []
        for _ in range(self.tasks_per_job):
            duration = self.sampler(self.rng)
            tprops = (
                self.tprops_for(self.rng, duration) if self.tprops_for else 0
            )
            specs.append(TaskSpec(duration_ns=duration, tprops=tprops))
        return specs

    def _submit_one(self) -> None:
        self.client.submit(self._job_specs())
        self.counters.incr("jobs")
        self.counters.incr("tasks", self.tasks_per_job)

    async def run(self) -> None:
        previous = self.client.on_job_done
        self.client.on_job_done = self._done.put_nowait
        try:
            horizon = self.clock.now + int(self.horizon_s * 1e9)
            for _ in range(self.outstanding):
                self._submit_one()
            while self.clock.now < horizon:
                try:
                    await asyncio.wait_for(self._done.get(), timeout=0.05)
                except asyncio.TimeoutError:
                    continue
                self._submit_one()
        finally:
            self.client.on_job_done = previous
