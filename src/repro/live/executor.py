"""A wall-clock executor: register, pull, execute, complete, repeat.

The live executor mirrors the simulated one (pull model, §4.6; piggyback
pulls on completions, §3.1) on a real socket. Task durations come from
the FN_PAR blob exactly as in the simulator; *how* they elapse is the one
place the live runtime must diverge:

* durations at or below ``spin_under_ns`` busy-spin on
  ``time.perf_counter_ns`` — the paper's executors "continually perform
  integer arithmetic operations for the task duration" (§8.4), and an
  asyncio timer cannot express microseconds anyway;
* longer durations yield to the event loop via ``call_later`` (epoll
  timer granularity ≈ 1 ms — a documented sim-vs-live deviation, see
  DESIGN.md §9);
* zero-duration tasks (the FN_NOOP throughput probe) complete inline.

Outstanding work is self-limited to ``max_outstanding`` pulls + running
tasks (the JBSQ-style bound the switch also enforces from the
registration handshake). A watchdog re-registers until acked and clears
pull credit that a dropped datagram left dangling.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass
from typing import Callable, Optional, Set

from repro.cluster.task import FN_NOOP, decode_duration
from repro.errors import ProtocolError
from repro.live.base import Counters, Endpoint, bump_socket_buffers
from repro.obs.hdr import LogHistogram
from repro.protocol import codec
from repro.protocol.messages import (
    Completion,
    ExecutorRegister,
    NoOpTask,
    RegisterAck,
    TaskAssignment,
    TaskRequest,
)


@dataclass
class LiveExecutorConfig:
    """Tunables for one live executor."""

    #: JBSQ-style bound on outstanding pulls + running tasks.
    max_outstanding: int = 2
    #: base re-poll delay after a no-op (doubles per consecutive no-op).
    poll_interval_s: float = 0.002
    #: cap on the no-op backoff (2**n doublings of poll_interval_s).
    poll_backoff_max: int = 5
    #: durations at or below this busy-spin; above, an asyncio timer.
    spin_under_ns: int = 1_000_000
    #: multiply every task duration (slow-motion runs / unit tests /
    #: the live WorkerSlowdown fault, which scales and later restores it).
    time_scale: float = 1.0
    #: registration retry + lost-pull recovery period.
    watchdog_s: float = 0.25


class LiveExecutor(asyncio.DatagramProtocol):
    """One executor process-equivalent on a connected UDP socket."""

    def __init__(
        self,
        executor_id: int,
        switch: Endpoint,
        config: Optional[LiveExecutorConfig] = None,
        node_id: int = 0,
        rack_id: int = 0,
        exec_rsrc: int = 0,
        transport_wrap: Optional[Callable] = None,
    ) -> None:
        self.executor_id = executor_id
        self.switch = switch
        self.config = config or LiveExecutorConfig()
        self.node_id = node_id
        self.rack_id = rack_id
        self.exec_rsrc = exec_rsrc
        self.transport_wrap = transport_wrap
        self.counters = Counters()
        #: wall-clock service time per executed task, nanoseconds
        self.service_hist = LogHistogram()
        self.epoch = 0
        self.registered = asyncio.Event()
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._watchdog: Optional[asyncio.Task] = None
        self._timers: Set[asyncio.TimerHandle] = set()
        self._idle_pulls = 0
        self._running = 0
        self._scheduled_pulls = 0
        self._noop_streak = 0
        self._closing = False
        self._request = TaskRequest(
            executor_id=executor_id,
            node_id=node_id,
            rack_id=rack_id,
            exec_rsrc=exec_rsrc,
        )
        self._request_bytes = codec.encode(self._request)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self._loop.create_datagram_endpoint(
            lambda: self, remote_addr=self.switch
        )
        self._watchdog = self._loop.create_task(self._watch())

    async def wait_registered(self, timeout_s: float = 2.0) -> None:
        await asyncio.wait_for(self.registered.wait(), timeout_s)

    def close(self) -> None:
        self._closing = True
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    async def aclose(self) -> None:
        """Close and await the watchdog (no leaked tasks on teardown)."""
        watchdog = self._watchdog
        self.close()
        if watchdog is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await watchdog

    def kill(self) -> None:
        """Fail-stop this executor (the live WorkerCrash fault).

        Identical to :meth:`close` — a crashed process sends nothing, not
        even in-flight completions — but named for the injector so crash
        sites are greppable. Tasks it held die with it; the client's
        resubmit watchdog recovers them through other executors.
        """
        self.counters.incr("killed")
        self.close()

    @property
    def closed(self) -> bool:
        return self._closing

    # -- protocol ----------------------------------------------------------

    def connection_made(self, transport) -> None:
        bump_socket_buffers(transport)
        if self.transport_wrap is not None:
            transport = self.transport_wrap(transport)
        self._transport = transport
        self._register()

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            message = codec.decode(data)
        except ProtocolError:
            self.counters.incr("malformed")
            return
        cls = message.__class__
        if cls is TaskAssignment:
            if self._idle_pulls > 0:
                self._idle_pulls -= 1
            self._noop_streak = 0
            self.counters.incr("assignments")
            self._execute(message)
        elif cls is NoOpTask:
            if self._idle_pulls > 0:
                self._idle_pulls -= 1
            self.counters.incr("noops")
            self._noop_streak += 1
            exponent = min(self._noop_streak - 1, self.config.poll_backoff_max)
            self._schedule_pull(self.config.poll_interval_s * (1 << exponent))
        elif cls is RegisterAck:
            if message.accepted:
                self.epoch = message.epoch
                if not self.registered.is_set():
                    self.registered.set()
                self._ensure_pulls()
            else:
                self.counters.incr("register_rejected")
        else:
            self.counters.incr("unexpected")

    def error_received(self, exc) -> None:
        self.counters.incr("socket_errors")

    # -- registration + pulls ----------------------------------------------

    def _register(self) -> None:
        if self._transport is None:
            return
        self.counters.incr("register_sent")
        self._transport.sendto(
            codec.encode(
                ExecutorRegister(
                    executor_id=self.executor_id,
                    node_id=self.node_id,
                    rack_id=self.rack_id,
                    exec_rsrc=self.exec_rsrc,
                    max_outstanding=self.config.max_outstanding,
                )
            )
        )

    def _outstanding(self) -> int:
        return self._idle_pulls + self._running + self._scheduled_pulls

    def _ensure_pulls(self) -> None:
        while (
            not self._closing
            and self._transport is not None
            and self._outstanding() < self.config.max_outstanding
        ):
            self._idle_pulls += 1
            self.counters.incr("pulls")
            self._transport.sendto(self._request_bytes)

    def _call_later(self, delay_s: float, fn, *args) -> None:
        """``loop.call_later`` with the handle tracked for teardown."""
        if self._closing or self._loop is None:
            return
        handle: Optional[asyncio.TimerHandle] = None

        def fire() -> None:
            if handle is not None:
                self._timers.discard(handle)
            fn(*args)

        handle = self._loop.call_later(delay_s, fire)
        self._timers.add(handle)

    def _schedule_pull(self, delay_s: float) -> None:
        if self._closing or self._loop is None:
            return
        if self._outstanding() >= self.config.max_outstanding:
            return
        self._scheduled_pulls += 1
        self._call_later(delay_s, self._fire_scheduled_pull)

    def _fire_scheduled_pull(self) -> None:
        self._scheduled_pulls -= 1
        self._ensure_pulls()

    async def _watch(self) -> None:
        """Re-register until acked; recover pulls lost to datagram drops.

        If nothing has been outstanding-consistent for a full watchdog
        period — idle pulls recorded but no traffic arriving — the pulls
        (or their replies) were dropped; zero the credit and pull again.
        Parked pulls at the switch expire well inside one period, so a
        healthy quiet system re-pulls at this cadence too, which is the
        drain path after the workload ends.
        """
        last_rx = dict(self.counters)
        while not self._closing:
            await asyncio.sleep(self.config.watchdog_s)
            if not self.registered.is_set():
                self._register()
                continue
            progressed = dict(self.counters) != last_rx
            last_rx = dict(self.counters)
            if progressed:
                continue
            if self._idle_pulls > 0:
                self.counters.incr("watchdog_repulls")
                self._idle_pulls = 0
            self._ensure_pulls()

    # -- execution ---------------------------------------------------------

    def _execute(self, assignment: TaskAssignment) -> None:
        task = assignment.task
        duration_ns = 0
        if task.fn_id != FN_NOOP:
            duration_ns = int(
                decode_duration(task.fn_par) * self.config.time_scale
            )
        if duration_ns <= 0:
            self._complete(assignment, started_ns=time.monotonic_ns())
        elif duration_ns <= self.config.spin_under_ns:
            self.counters.incr("spins")
            self._running += 1
            started = time.monotonic_ns()
            deadline = started + duration_ns
            while time.monotonic_ns() < deadline:
                pass
            self._running -= 1
            self._complete(assignment, started_ns=started)
        else:
            self.counters.incr("timers")
            self._running += 1
            started = time.monotonic_ns()
            self._call_later(
                duration_ns / 1e9, self._finish_timer, assignment, started
            )

    def _finish_timer(self, assignment: TaskAssignment, started_ns: int) -> None:
        self._running -= 1
        self._complete(assignment, started_ns=started_ns)

    def _complete(self, assignment: TaskAssignment, started_ns: int) -> None:
        if self._transport is None:
            return
        self.service_hist.record(time.monotonic_ns() - started_ns)
        self.counters.incr("completions")
        # Piggyback the next pull on the completion (§3.1) whenever the
        # freed slot leaves budget for one; the switch processes both in
        # the same traversal.
        piggyback = None
        if (
            not self._closing
            and self._outstanding() < self.config.max_outstanding
        ):
            self._idle_pulls += 1
            self.counters.incr("pulls")
            piggyback = self._request
        self._transport.sendto(
            codec.encode(
                Completion(
                    uid=assignment.uid,
                    jid=assignment.jid,
                    tid=assignment.task.tid,
                    executor_id=self.executor_id,
                    success=True,
                    client=assignment.client,
                    piggyback_request=piggyback,
                )
            )
        )
