"""Live chaos: seeded fault injection for the real-socket runtime.

The simulator's chaos fuzzer (PR 6) exercises every recovery path —
bounce backoff, resubmit watchdogs, re-register epochs, credit resync,
checkpoint failover — against a *modelled* network. This module points
the same :class:`~repro.faults.plan.FaultPlan` window grammar at the
actual dataplane:

* **wire faults** — :class:`ChaosTransport` wraps the asyncio datagram
  transports of :class:`~repro.live.softswitch.SoftSwitch`,
  :class:`~repro.live.executor.LiveExecutor` and
  :class:`~repro.live.client.LiveClient`, injecting loss, duplication,
  reorder/delay jitter, bit corruption and burst blackouts on the send
  side. Every datagram is *somebody's* send, so wrapping all three
  components covers both directions of every link: a fault window naming
  ``exec0`` matches packets exec0 sends (its own transport) *and*
  packets the switch sends to exec0's endpoint (the switch's transport,
  matched through the endpoint registry).
* **process faults** — :class:`LiveFaultInjector` schedules
  ``WorkerCrash`` (kill + restart on a *new socket*, exercising the
  epoch-bump / endpoint-move re-register path for real),
  ``WorkerSlowdown`` (scales the executor's ``time_scale``) and
  ``SwitchFailover`` (swaps in :meth:`SoftSwitch.standby_program`, with
  :class:`~repro.ctrl.checkpoint.CheckpointManager` replaying
  checkpoint + journal so queued tasks survive).
* **corruption is the FCS model** — mutated frames are pushed through
  ``codec.decode`` as a parser fuzz (only ``ProtocolError`` is an
  acceptable outcome) and then *always dropped*, exactly like the
  simulator's :class:`~repro.faults.links.LinkChaos`; a codec without
  checksums must never deliver a mutated frame that decodes to a
  plausible message.

All randomness comes from one named :class:`~repro.sim.rng.RngStreams`
stream, so a scenario's *decisions* (which packet dropped, which bits
flipped) replay deterministically from its seed; wall-clock interleaving
is the one thing that cannot (see DESIGN.md §9.4).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.policies import PriorityPolicy
from repro.ctrl.checkpoint import CheckpointManager
from repro.errors import ConfigurationError, LiveTimeoutError, ProtocolError
from repro.faults.events import (
    ControllerCrash,
    LinkFault,
    PacketCorruption,
    Partition,
    SwitchFailover,
    WorkerCrash,
    WorkerSlowdown,
    event_end,
)
from repro.faults.plan import FaultPlan, sample_ctrl_faults
from repro.live.base import Counters, Endpoint
from repro.live.client import LiveClient, LiveClientConfig
from repro.live.ctrlplane import LiveControllerReplica, ctrl_name
from repro.live.executor import LiveExecutor, LiveExecutorConfig
from repro.live.loadgen import OpenLoopGen
from repro.live.results import LiveResult
from repro.live.runtime import LiveSpec, _collect, diagnostic_dump
from repro.live.softswitch import SoftSwitch
from repro.protocol import codec
from repro.sim.rng import RngStreams
from repro.verify.live_oracle import LiveInvariantOracle
from repro.verify.oracle import Violation

#: wire-fault windows the transport layer matches at send time
_WIRE_FAULTS = (LinkFault, PacketCorruption, Partition)


def exec_name(executor_id: int) -> str:
    """The fault-plan node name of one live executor."""
    return f"exec{executor_id}"


CLIENT_NAME = "client"
SWITCH_NAME = "switch"


# ---------------------------------------------------------------------------
# the fault-injecting datagram layer
# ---------------------------------------------------------------------------


class ChaosNet:
    """Shared state for every :class:`ChaosTransport` in one run.

    Holds the plan, the seeded RNG, the chaos clock origin (``arm()`` at
    workload start — fault windows are nanoseconds relative to it, the
    same convention the simulator's injector uses), and the endpoint →
    component-name registry that lets the switch's transport attribute an
    outgoing packet to the link it will travel.
    """

    def __init__(
        self,
        plan: FaultPlan,
        rng: np.random.Generator,
        clock,
    ) -> None:
        self.plan = plan
        self.rng = rng
        self.clock = clock
        self.counters = Counters()
        self.endpoints: Dict[Endpoint, str] = {}
        self.transports: List["ChaosTransport"] = []
        self._t0: Optional[int] = None
        self._wire: Dict[type, list] = {cls: [] for cls in _WIRE_FAULTS}
        for event in plan:
            if event.__class__ in self._wire:
                self._wire[event.__class__].append(event)
        self._last_end_ns = max(
            (event_end(e) for e in plan.events), default=0
        )

    def arm(self) -> None:
        """Start the chaos clock; fault windows count from here."""
        self._t0 = self.clock.now

    @property
    def armed(self) -> bool:
        return self._t0 is not None

    def elapsed_ns(self) -> int:
        if self._t0 is None:
            return -1
        return self.clock.now - self._t0

    def windows_closed(self) -> bool:
        """True once every fault window in the plan has ended."""
        return self.armed and self.elapsed_ns() >= self._last_end_ns

    def last_end_ns(self) -> int:
        return self._last_end_ns

    def register_endpoint(self, name: str, endpoint: Endpoint) -> None:
        self.endpoints[endpoint] = name

    def link_name(self, sender: str, addr) -> str:
        """Which link a packet travels: the remote end if known, else
        the sender's own cable (connected sockets pass ``addr=None``)."""
        if addr is None:
            return sender
        return self.endpoints.get((addr[0], addr[1]), sender)

    def active(self, cls: type, link: str) -> list:
        """Fault windows of ``cls`` currently open on ``link``."""
        now = self.elapsed_ns()
        if now < 0:
            return []
        out = []
        for event in self._wire[cls]:
            if not event.start_ns <= now < event.end_ns:
                continue
            nodes = event.nodes
            if nodes is None or link in nodes:
                out.append(event)
        return out

    def wrap(self, name: str) -> Callable:
        """A ``transport_wrap`` factory for one named component.

        Registers the transport's local endpoint under ``name`` (so the
        switch's sends toward it are attributed to the same link) and
        returns the wrapping :class:`ChaosTransport`.
        """

        def factory(transport) -> "ChaosTransport":
            sockname = transport.get_extra_info("sockname")
            if sockname:
                self.register_endpoint(name, (sockname[0], sockname[1]))
            wrapped = ChaosTransport(self, name, transport)
            self.transports.append(wrapped)
            return wrapped

        return factory

    def pending_delayed(self) -> int:
        """Reorder-delayed packets not yet released (quiescence check)."""
        return sum(len(t._delayed) for t in self.transports)


class ChaosTransport:
    """A fault-injecting façade over one ``asyncio.DatagramTransport``.

    Injection is send-side only — sufficient because every packet is
    someone's send — and per-packet decisions draw from the shared
    seeded RNG in plan order: blackout (Partition) first, then
    corruption, then loss/duplication/reorder.
    """

    def __init__(self, net: ChaosNet, name: str, inner) -> None:
        self.net = net
        self.name = name
        self.inner = inner
        self._delayed: Set[asyncio.TimerHandle] = set()
        self._closing = False

    # -- the injection point ----------------------------------------------

    def sendto(self, data: bytes, addr=None) -> None:
        net = self.net
        if not net.armed:
            self.inner.sendto(data, addr)
            return
        link = net.link_name(self.name, addr)
        if net.active(Partition, link):
            net.counters.incr("partition_drops")
            return
        for fault in net.active(PacketCorruption, link):
            if net.rng.random() < fault.corrupt_prob:
                self._corrupt(data, fault)
                return
        duplicate = False
        delay_ns = 0
        for fault in net.active(LinkFault, link):
            if fault.loss_prob and net.rng.random() < fault.loss_prob:
                net.counters.incr("loss_drops")
                return
            if (
                fault.duplicate_prob
                and net.rng.random() < fault.duplicate_prob
            ):
                duplicate = True
            if fault.reorder_prob and net.rng.random() < fault.reorder_prob:
                delay_ns = max(
                    delay_ns,
                    int(net.rng.uniform(0, fault.reorder_jitter_ns)),
                )
        if delay_ns > 0:
            net.counters.incr("reorder_delays")
            self._send_later(delay_ns / 1e9, data, addr)
            if duplicate:
                net.counters.incr("wire_duplicates")
                self._send_later(delay_ns / 1e9, data, addr)
            return
        self.inner.sendto(data, addr)
        if duplicate:
            net.counters.incr("wire_duplicates")
            self.inner.sendto(data, addr)

    def _corrupt(self, data: bytes, fault: PacketCorruption) -> None:
        """Mutate, fuzz the parser with the result, drop the frame.

        Matches the simulator's FCS model bit for bit in spirit: the
        decode attempt is a free protocol-parser fuzz (anything but
        ``ProtocolError`` out of the codec is a bug the oracle flags),
        and the frame never reaches the peer — a real NIC discards a
        frame whose checksum fails.
        """
        net = self.net
        rng = net.rng
        blob = bytearray(data)
        if len(blob) > 1 and rng.random() < fault.truncate_prob:
            blob = blob[: int(rng.integers(1, len(blob)))]
        else:
            for _ in range(int(rng.integers(1, fault.max_bit_flips + 1))):
                pos = int(rng.integers(0, len(blob)))
                blob[pos] ^= 1 << int(rng.integers(0, 8))
        try:
            codec.decode(bytes(blob))
        except ProtocolError:
            pass
        except Exception:
            net.counters.incr("parser_crashes")
        net.counters.incr("corrupt_drops")

    def _send_later(self, delay_s: float, data: bytes, addr) -> None:
        if self._closing:
            return
        loop = asyncio.get_running_loop()
        handle: Optional[asyncio.TimerHandle] = None

        def fire() -> None:
            if handle is not None:
                self._delayed.discard(handle)
            if not self._closing and not self.inner.is_closing():
                self.inner.sendto(data, addr)

        handle = loop.call_later(delay_s, fire)
        self._delayed.add(handle)

    # -- transport façade --------------------------------------------------

    def close(self) -> None:
        self._closing = True
        for handle in self._delayed:
            handle.cancel()
        self._delayed.clear()
        self.inner.close()

    def is_closing(self) -> bool:
        return self._closing or self.inner.is_closing()

    def abort(self) -> None:
        self._closing = True
        for handle in self._delayed:
            handle.cancel()
        self._delayed.clear()
        self.inner.abort()

    def get_extra_info(self, name: str, default=None):
        return self.inner.get_extra_info(name, default)


# ---------------------------------------------------------------------------
# process-level faults
# ---------------------------------------------------------------------------


class _WallSim:
    """Duck-types the simulator surface ``CheckpointManager`` drives.

    The manager reads ``sim.now``, yields ``sim.timeout(ns)`` from its
    checkpoint loop, and hands that generator to ``sim.spawn``. Here
    ``timeout`` returns the delay itself and the spawned driver awaits
    it on the asyncio clock — the manager's code runs unmodified against
    wall time.
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self._tasks: List[asyncio.Task] = []

    @property
    def now(self) -> int:
        return self.clock.now

    def timeout(self, delay_ns: int) -> int:
        return delay_ns

    def spawn(self, gen, name: Optional[str] = None) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(
            self._drive(gen), name=name
        )
        self._tasks.append(task)
        return task

    async def _drive(self, gen) -> None:
        for delay_ns in gen:
            await asyncio.sleep(delay_ns / 1e9)

    async def aclose(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks.clear()


class LiveFaultInjector:
    """Schedules process-level faults from a plan onto the event loop.

    Wire faults (loss, corruption, blackouts) are matched per packet by
    :class:`ChaosNet`; this injector owns the faults that need a hand on
    a component: executor kill/restart, slowdown windows, and switch
    failover. ``arm()`` converts every event's plan-relative time into a
    ``call_later`` against the armed chaos clock.
    """

    def __init__(
        self,
        plan: FaultPlan,
        switch: SoftSwitch,
        executors: Dict[int, LiveExecutor],
        make_executor: Callable[[int], LiveExecutor],
        base_time_scale: float = 1.0,
        controllers: Optional[Dict[int, LiveControllerReplica]] = None,
        make_controller: Optional[
            Callable[[int], LiveControllerReplica]
        ] = None,
    ) -> None:
        self.plan = plan
        self.switch = switch
        self.executors = executors
        self.make_executor = make_executor
        self.base_time_scale = base_time_scale
        self.controllers = controllers if controllers is not None else {}
        self.make_controller = make_controller
        self.counters = Counters()
        #: killed incarnations, kept for counter/histogram aggregation
        self.retired: List[LiveExecutor] = []
        self.ctrl_retired: List[LiveControllerReplica] = []
        self._timers: Set[asyncio.TimerHandle] = set()
        self._tasks: List[asyncio.Task] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def arm(self) -> None:
        self._loop = asyncio.get_running_loop()
        for event in self.plan:
            cls = event.__class__
            if cls is WorkerCrash:
                self._at(event.at_ns, self._crash, event)
                if event.restart_after_ns is not None:
                    self._at(
                        event.at_ns + event.restart_after_ns,
                        self._restart,
                        event.node_id,
                    )
            elif cls is WorkerSlowdown:
                self._at(event.start_ns, self._slow, event)
                self._at(event.end_ns, self._restore_speed, event.node_id)
            elif cls is SwitchFailover:
                self._at(event.at_ns, self._failover)
            elif cls is ControllerCrash:
                if self.controllers:
                    self._at(event.at_ns, self._ctrl_crash, event)
                    if event.restart_after_ns is not None:
                        self._at(
                            event.at_ns + event.restart_after_ns,
                            self._ctrl_restart,
                            event.replica_id,
                        )
                else:
                    self.counters.incr("unsupported_events")
            elif cls in _WIRE_FAULTS:
                pass  # window-matched per packet by ChaosNet
            else:
                # e.g. RecircExhaustion: the soft switch recirculates
                # inline, there is no backlog queue to shrink. Counted so
                # a plan that expected it to bite is visibly a no-op.
                self.counters.incr("unsupported_events")

    def _at(self, at_ns: int, fn, *args) -> None:
        assert self._loop is not None
        handle: Optional[asyncio.TimerHandle] = None

        def fire() -> None:
            if handle is not None:
                self._timers.discard(handle)
            fn(*args)

        handle = self._loop.call_later(at_ns / 1e9, fire)
        self._timers.add(handle)

    def _crash(self, event: WorkerCrash) -> None:
        executor = self.executors.get(event.node_id)
        if executor is None or executor.closed:
            self.counters.incr("crash_skipped")
            return
        self.counters.incr("crashes")
        self.retired.append(executor)
        executor.kill()

    def _restart(self, node_id: int) -> None:
        self.counters.incr("restarts")
        # A fresh socket: the OS hands out a new ephemeral port, so the
        # re-register is also an endpoint move — the switch must bump the
        # epoch and re-home the record, or completions go to a dead port.
        executor = self.make_executor(node_id)
        self.executors[node_id] = executor
        assert self._loop is not None
        self._tasks.append(self._loop.create_task(executor.start()))

    def _slow(self, event: WorkerSlowdown) -> None:
        executor = self.executors.get(event.node_id)
        if executor is not None and not executor.closed:
            self.counters.incr("slowdowns")
            executor.config.time_scale = self.base_time_scale * event.factor

    def _restore_speed(self, node_id: int) -> None:
        # Absolute restore (not division): idempotent across overlapping
        # windows and across a crash/restart that replaced the incarnation
        # mid-window with a base-speed config.
        executor = self.executors.get(node_id)
        if executor is not None:
            executor.config.time_scale = self.base_time_scale

    def _failover(self) -> None:
        self.counters.incr("failovers")
        self.switch.install_program(self.switch.standby_program())

    def _ctrl_crash(self, event: ControllerCrash) -> None:
        replica = self.controllers.get(event.replica_id)
        if replica is None or replica.closed:
            self.counters.incr("ctrl_crash_skipped")
            return
        self.counters.incr("ctrl_crashes")
        self.ctrl_retired.append(replica)
        replica.kill()

    def _ctrl_restart(self, replica_id: int) -> None:
        if self.make_controller is None:
            return
        self.counters.incr("ctrl_restarts")
        # Fresh socket, fresh incarnation: the replica rejoins as a
        # follower at term 0 and relearns the current term from acks and
        # peer sync — it must never be granted a stale term again (the
        # register only moves forward).
        replica = self.make_controller(replica_id)
        self.controllers[replica_id] = replica
        assert self._loop is not None
        self._tasks.append(self._loop.create_task(replica.start()))

    def idle(self) -> bool:
        """No fault is still scheduled or mid-restart (quiescence)."""
        return not self._timers and all(t.done() for t in self._tasks)

    async def aclose(self) -> None:
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        for task in self._tasks:
            if not task.done():
                task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks.clear()


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


def sample_live_plan(
    rng: np.random.Generator,
    horizon_ns: int,
    executor_ids: Sequence[int],
    max_events: int = 5,
) -> FaultPlan:
    """The live chaos grammar: every fault the dataplane can express.

    A trimmed :meth:`FaultPlan.fuzzed`: same recoverability guardrails
    (windows close inside the middle 60% of the horizon; permanent
    crashes are budgeted so at least one executor always survives), node
    names follow the live convention (``exec{i}``, plus ``client`` as a
    wire-fault target), and ``RecircExhaustion`` is excluded — the soft
    switch recirculates inline and has no backlog queue to shrink.
    """
    if not executor_ids:
        raise ConfigurationError("live plan needs executor ids")
    if max_events < 1:
        raise ConfigurationError(f"max_events must be >= 1: {max_events}")
    nodes = list(executor_ids)
    exec_names = [exec_name(n) for n in nodes]
    wire_names = exec_names + [CLIENT_NAME]
    lo, hi = int(horizon_ns * 0.2), int(horizon_ns * 0.8)

    def when() -> int:
        return int(rng.integers(lo, hi))

    def window(max_frac: float = 0.2) -> Tuple[int, int]:
        start = when()
        length = int(
            rng.integers(max(1, horizon_ns * 0.02), horizon_ns * max_frac)
        )
        return start, min(start + length, hi)

    def maybe_target():
        return (
            None if rng.random() < 0.5 else (str(rng.choice(wire_names)),)
        )

    state = {"permanent_budget": len(nodes) - 1}
    permanently_dead: set = set()

    def crash_burst() -> List[object]:
        node = int(rng.choice(nodes))
        cycles = int(rng.integers(1, 3))
        out: List[object] = []
        at = when()
        for _ in range(cycles):
            if at >= hi:
                break
            permanent = (
                rng.random() < 0.2
                and state["permanent_budget"] > 0
                and node not in permanently_dead
            )
            if permanent:
                out.append(
                    WorkerCrash(at_ns=at, node_id=node, restart_after_ns=None)
                )
                state["permanent_budget"] -= 1
                permanently_dead.add(node)
                break
            restart = int(rng.integers(horizon_ns * 0.05, horizon_ns * 0.2))
            out.append(
                WorkerCrash(at_ns=at, node_id=node, restart_after_ns=restart)
            )
            at = at + restart + int(
                rng.integers(horizon_ns * 0.02, horizon_ns * 0.08)
            )
        return out

    def link_fault() -> List[object]:
        start, end = window()
        return [
            LinkFault(
                start_ns=start,
                end_ns=end,
                nodes=maybe_target(),
                loss_prob=float(rng.uniform(0.0, 0.2)),
                duplicate_prob=float(rng.uniform(0.0, 0.08)),
                reorder_prob=float(rng.uniform(0.0, 0.15)),
                reorder_jitter_ns=int(rng.integers(100_000, 5_000_000)),
            )
        ]

    def corruption() -> List[object]:
        start, end = window()
        return [
            PacketCorruption(
                start_ns=start,
                end_ns=end,
                nodes=maybe_target(),
                corrupt_prob=float(rng.uniform(0.01, 0.25)),
                truncate_prob=float(rng.uniform(0.0, 0.6)),
                max_bit_flips=int(rng.integers(1, 6)),
            )
        ]

    def partition() -> List[object]:
        start, end = window(max_frac=0.15)
        return [
            Partition(
                start_ns=start,
                end_ns=end,
                nodes=(str(rng.choice(wire_names)),),
            )
        ]

    def slowdown() -> List[object]:
        start, end = window()
        return [
            WorkerSlowdown(
                start_ns=start,
                end_ns=end,
                node_id=int(rng.choice(nodes)),
                factor=float(rng.uniform(1.5, 6.0)),
            )
        ]

    def failover_burst() -> List[object]:
        return [
            SwitchFailover(at_ns=when())
            for _ in range(int(rng.integers(1, 3)))
        ]

    productions = (
        link_fault,
        corruption,
        partition,
        crash_burst,
        slowdown,
        failover_burst,
    )
    weights = np.array([0.22, 0.18, 0.15, 0.20, 0.12, 0.13])
    weights = weights / weights.sum()
    target = int(rng.integers(1, max_events + 1))
    events: List[object] = []
    while len(events) < target:
        idx = int(rng.choice(len(productions), p=weights))
        events.extend(productions[idx]())
    return FaultPlan(events[:max_events])


@dataclass
class ChaosScenario:
    """One seed-deterministic live chaos run, fully pinned.

    Live durations are short (hundreds of milliseconds of workload, a
    generous drain) because wall-clock seconds are CI seconds; the retry
    budget and resubmit timeout are deliberately generous so a plan from
    the recoverable grammar *can* always converge — an oracle violation
    then means a bug, not an impossible scenario.
    """

    seed: int
    executors: int = 3
    policy: str = "fcfs"  # "fcfs" | "priority"
    rate_tps: float = 400.0
    duration_s: float = 0.3
    drain_s: float = 6.0
    tasks_per_job: int = 2
    mean_us: float = 100.0
    max_outstanding: int = 2
    resubmit_timeout_s: float = 0.25
    max_retries: int = 24
    checkpoint_interval_s: float = 0.05
    max_events: int = 5
    #: 0 = no live control plane (the pre-replication default); >= 2
    #: runs that many LiveControllerReplica endpoints electing through
    #: the soft switch, and the plan may contain ControllerCrash events
    controller_replicas: int = 0
    plan_json: str = ""

    def plan(self) -> FaultPlan:
        return FaultPlan.from_json(self.plan_json)

    def spec(self) -> LiveSpec:
        """The workload half, as the live runtime describes workloads."""
        return LiveSpec(
            executors=self.executors,
            policy=self.policy,
            seed=self.seed,
            rate_tps=self.rate_tps,
            duration_s=self.duration_s,
            tasks_per_job=self.tasks_per_job,
            dist="exponential",
            mean_us=self.mean_us,
            max_outstanding=self.max_outstanding,
            drain_s=self.drain_s,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ChaosScenario":
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"ChaosScenario: unknown fields {sorted(unknown)}"
            )
        return cls(**payload)


def sample_scenario(
    seed: int,
    max_events: int = 5,
    duration_s: float = 0.3,
    controller_replicas: Optional[int] = None,
) -> ChaosScenario:
    """Sample one scenario; the seed fully determines workload and plan.

    ``controller_replicas=None`` samples the toggle (half the runs get a
    3-replica live control plane); an explicit value pins it, which is
    what the CI matrix uses. Replication decisions draw from their own
    RNG streams so pre-replication seeds still produce byte-identical
    scenarios when the toggle is pinned to 0.
    """
    rngs = RngStreams(seed)
    rng = rngs.stream("live-fuzz")
    scenario = ChaosScenario(
        seed=seed,
        policy="priority" if rng.random() < 0.3 else "fcfs",
        rate_tps=float(rng.choice([200.0, 400.0, 800.0])),
        duration_s=duration_s,
        max_events=max_events,
    )
    if controller_replicas is None:
        rep_rng = rngs.stream("live-fuzz-ctrl")
        controller_replicas = 3 if rep_rng.random() < 0.5 else 0
    scenario.controller_replicas = int(controller_replicas)
    horizon_ns = int(scenario.duration_s * 1e9)
    plan = sample_live_plan(
        rng,
        horizon_ns=horizon_ns,
        executor_ids=list(range(scenario.executors)),
        max_events=max_events,
    )
    events = list(plan.events)
    if scenario.controller_replicas >= 2:
        events.extend(
            sample_ctrl_faults(
                rngs.stream("live-fuzz-ctrl-plan"),
                horizon_ns,
                replica_ids=list(range(scenario.controller_replicas)),
                ctrl_names=[
                    ctrl_name(i)
                    for i in range(scenario.controller_replicas)
                ],
                max_events=2,
            )
        )
        plan = FaultPlan(events)
    scenario.plan_json = plan.to_json()
    return scenario


# ---------------------------------------------------------------------------
# running one scenario
# ---------------------------------------------------------------------------


@dataclass
class ChaosRunResult:
    """One live chaos run: scenario, verdict, evidence."""

    scenario: ChaosScenario
    ok: bool
    violations: List[Violation]
    checks: int
    result: LiveResult
    #: merged ChaosNet + injector counters: what actually fired
    injected: Dict[str, int] = field(default_factory=dict)
    #: re-registrations beyond each executor's first (epoch bumps seen)
    reregistrations: int = 0
    epoch_history: Dict[int, List[int]] = field(default_factory=dict)
    #: per-replica LiveControllerReplica.stats() + the switch's election
    #: register audit, when the scenario ran a live control plane
    ctrl: Dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0

    def kinds(self) -> Tuple[str, ...]:
        return self.scenario.plan().kinds()

    def row(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        kinds = ",".join(k.replace("Worker", "").replace("Packet", "")
                         for k in self.kinds()) or "none"
        r = self.result
        ctrl = ""
        if self.ctrl:
            election = self.ctrl.get("election", {})
            ctrl = (
                f" ctrl[n={self.scenario.controller_replicas}"
                f" term={election.get('term', 0)}"
                f" elections={election.get('elections_held', 0)}]"
            )
        return (
            f"seed={self.scenario.seed:<6d} {verdict:<4s} "
            f"faults=[{kinds}] tasks={r.tasks_completed}/{r.tasks_submitted}"
            f" lost={r.tasks_lost} dup={r.duplicates}"
            f" resubmit={r.resubmits} rereg={self.reregistrations}"
            f"{ctrl} wall={self.wall_s:.1f}s"
        )


async def run_live_chaos_async(
    scenario: ChaosScenario, timeout_s: Optional[float] = None
) -> ChaosRunResult:
    """Run one chaos scenario end to end in this event loop."""
    spec = scenario.spec()
    spec.validate()
    plan = scenario.plan()
    rngs = RngStreams(scenario.seed)
    policy = (
        PriorityPolicy(spec.priority_levels)
        if scenario.policy == "priority"
        else None
    )

    switch = SoftSwitch(
        policy=policy, queue_capacity=spec.queue_capacity
    )
    chaos = ChaosNet(plan, rng=rngs.stream("live-chaos"), clock=switch.sim)
    switch.transport_wrap = chaos.wrap(SWITCH_NAME)
    await switch.start()
    wallsim = _WallSim(switch.sim)
    checkpoints = CheckpointManager(
        wallsim,  # type: ignore[arg-type]
        switch,
        interval_ns=int(scenario.checkpoint_interval_s * 1e9),
    )

    def make_executor(executor_id: int) -> LiveExecutor:
        return LiveExecutor(
            executor_id=executor_id,
            switch=switch.endpoint,
            config=LiveExecutorConfig(
                max_outstanding=scenario.max_outstanding
            ),
            node_id=executor_id,
            transport_wrap=chaos.wrap(exec_name(executor_id)),
        )

    executors: Dict[int, LiveExecutor] = {
        i: make_executor(i) for i in range(scenario.executors)
    }

    controllers: Dict[int, LiveControllerReplica] = {}

    def make_controller(replica_id: int) -> LiveControllerReplica:
        replica = LiveControllerReplica(
            replica_id=replica_id,
            switch=switch.endpoint,
            clock=switch.sim,
            transport_wrap=chaos.wrap(ctrl_name(replica_id)),
        )
        replica.peer_resolver = lambda: [
            r.endpoint
            for r in controllers.values()
            if not r.closed and r._endpoint is not None
        ]
        return replica

    if scenario.controller_replicas >= 2:
        for i in range(scenario.controller_replicas):
            controllers[i] = make_controller(i)

    client = LiveClient(
        uid=0,
        config=LiveClientConfig(
            resubmit_timeout_s=scenario.resubmit_timeout_s,
            max_retries=scenario.max_retries,
        ),
        clock=switch.sim,
        rng=rngs.stream("live-client"),
        transport_wrap=chaos.wrap(CLIENT_NAME),
    )
    injector = LiveFaultInjector(
        plan,
        switch,
        executors,
        make_executor,
        controllers=controllers,
        make_controller=make_controller,
    )
    oracle = LiveInvariantOracle(
        switch=switch,
        client=client,
        executors=executors,
        retired=injector.retired,
        chaos=chaos,
        injector=injector,
        controllers=controllers,
    )

    async def drive() -> ChaosRunResult:
        for executor in executors.values():
            await executor.start()
        await asyncio.gather(
            *(e.wait_registered(5.0) for e in executors.values())
        )
        for replica in controllers.values():
            await replica.start()
        await client.start(switch.endpoint)
        oracle.attach()

        start_ns = switch.sim.now
        chaos.arm()
        injector.arm()
        gen = OpenLoopGen(client, spec.events(rngs), clock=switch.sim)
        await gen.run()

        await client.drain(scenario.drain_s)
        # Every fault window must close before the final sweep — a
        # partition still open at check time is not a violation, it is
        # the scenario.
        while not chaos.windows_closed():
            await asyncio.sleep(0.01)
        # A leader killed near the end of the horizon needs up to one
        # lease + one poll before a successor is granted the next term;
        # give the election that long before the oracle demands a leader.
        if controllers:
            ctrl_deadline = switch.sim.now + int(1.0 * 1e9)
            while switch.sim.now < ctrl_deadline:
                alive = [r for r in controllers.values() if not r.closed]
                if not alive or any(r.is_leader() for r in alive):
                    break
                await asyncio.sleep(0.01)
        # Settle: late completions, reorder-delayed stragglers, the last
        # queued tasks behind a slow executor.
        deadline = switch.sim.now + int(2.0 * 1e9)
        while switch.sim.now < deadline:
            if (
                client.pending_count == 0
                and switch.total_queued() == 0
                and chaos.pending_delayed() == 0
                and injector.idle()
            ):
                break
            await asyncio.sleep(0.02)
        await asyncio.sleep(0.05)

        wall_ns = switch.sim.now - start_ns
        report = oracle.check_final()
        all_executors = list(injector.retired) + list(executors.values())
        live_result = _collect(
            spec, switch, all_executors, client, wall_ns, gen.max_lag_ns
        )
        injected = Counters()
        for name, value in chaos.counters.items():
            injected.incr(name, value)
        for name, value in injector.counters.items():
            injected.incr(name, value)
        rereg = sum(
            len(history) - 1
            for history in switch.epoch_history.values()
            if len(history) > 1
        )
        ctrl_stats: Dict[str, Any] = {}
        if controllers:
            live_replicas = list(controllers.values())
            ctrl_stats = {
                "election": switch.election.audit(),
                "replicas": [r.stats() for r in live_replicas],
                "retired": [
                    r.stats()
                    for r in injector.ctrl_retired
                    if r not in live_replicas
                ],
            }
        return ChaosRunResult(
            scenario=scenario,
            ok=report.ok,
            violations=list(report.violations),
            checks=report.checks,
            result=live_result,
            injected=dict(injected),
            reregistrations=rereg,
            epoch_history={
                k: list(v) for k, v in switch.epoch_history.items()
            },
            ctrl=ctrl_stats,
            wall_s=wall_ns / 1e9,
        )

    try:
        if timeout_s is None:
            return await drive()
        try:
            return await asyncio.wait_for(drive(), timeout_s)
        except asyncio.TimeoutError:
            raise LiveTimeoutError(
                f"live chaos run (seed {scenario.seed}) exceeded the "
                f"{timeout_s}s hard cap\n"
                + f"plan: {plan.describe()}\n"
                + f"injected: {dict(chaos.counters)} "
                + f"{dict(injector.counters)}\n"
                + diagnostic_dump(
                    switch,
                    list(injector.retired) + list(executors.values()),
                    client,
                )
            ) from None
    finally:
        await oracle.aclose()
        await injector.aclose()
        await wallsim.aclose()
        await client.aclose()
        for replica in list(injector.ctrl_retired) + list(
            controllers.values()
        ):
            await replica.aclose()
        for executor in list(injector.retired) + list(executors.values()):
            await executor.aclose()
        switch.close()
        await asyncio.sleep(0)


def run_live_chaos(
    scenario: ChaosScenario, timeout_s: Optional[float] = None
) -> ChaosRunResult:
    """Synchronous wrapper: one fresh event loop per scenario."""
    return asyncio.run(run_live_chaos_async(scenario, timeout_s=timeout_s))
