"""Live-run results: HDR summaries, counters, JSON persistence.

The artifact format follows :mod:`repro.experiments.persist` — a schema
tag, provenance, summary statistics — so downstream analysis loads both
kinds through the same validated path
(``persist.load_result(path, expected_schema=results.SCHEMA)``).
Histograms serialize as percentile summaries, not raw cells: the HDR
structure is an implementation detail, the quartet is the interface.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

from repro.experiments import persist
from repro.metrics.summary import latency_row
from repro.obs.hdr import LogHistogram

SCHEMA = "repro.liveresult/1"


def hist_summary(hist: LogHistogram) -> Dict[str, Any]:
    """Serialize a nanosecond histogram as its microsecond quartet."""
    if not hist.count:
        return {"count": 0}
    p50, p90, p99, p999 = hist.percentiles((50, 90, 99, 99.9))
    return {
        "count": hist.count,
        "mean_us": hist.mean / 1e3,
        "p50_us": p50 / 1e3,
        "p90_us": p90 / 1e3,
        "p99_us": p99 / 1e3,
        "p999_us": p999 / 1e3,
        "max_us": hist.max / 1e3,
    }


@dataclass
class LiveResult:
    """Everything one live run produced, the unit conformance compares."""

    spec: Dict[str, Any]
    wall_s: float
    tasks_submitted: int
    tasks_completed: int  # unique (uid, jid, tid) completions
    tasks_lost: int  # still pending at drain end + retry-budget give-ups
    duplicates: int
    phantoms: int
    resubmits: int
    bounce_give_ups: int
    timeout_give_ups: int
    throughput_tps: float
    priority_inversions: int
    #: submit -> completion notice, wall nanoseconds (client-side HDR)
    e2e: LogHistogram
    #: switch-side time-in-queue per dequeued task, wall nanoseconds
    queue_delay: LogHistogram
    #: executor-side wall service time, nanoseconds
    service: LogHistogram
    sched_stats: Dict[str, int] = field(default_factory=dict)
    switch_counters: Dict[str, int] = field(default_factory=dict)
    executor_counters: Dict[str, int] = field(default_factory=dict)
    client_counters: Dict[str, int] = field(default_factory=dict)
    max_loadgen_lag_ns: int = 0

    @property
    def conserved(self) -> bool:
        """Zero lost, zero phantom — the conformance gate."""
        return self.tasks_lost == 0 and self.phantoms == 0

    def mean_queue_depth(self) -> float:
        """Little's-law mean queue depth over the run.

        ``sum(time-in-queue) / wall time`` needs no sampling loop and is
        computed identically from the simulator's ``queue_delays``, which
        is what makes the sim-vs-live skew check apples-to-apples.
        """
        if self.wall_s <= 0:
            return 0.0
        return self.queue_delay.total / (self.wall_s * 1e9)

    def rows(self) -> List[str]:
        head = latency_row(
            self.tasks_completed, [("tput", self.throughput_tps)], unit="tps"
        )
        return [
            head
            + f"  lost={self.tasks_lost}  dup={self.duplicates}"
            + f"  phantom={self.phantoms}"
            + f"  resubmit={self.resubmits}"
            + f"  gaveup={self.bounce_give_ups + self.timeout_give_ups}"
            + f"  inversions={self.priority_inversions}",
            f"e2e    {self.e2e.row()}",
            f"queue  {self.queue_delay.row()}",
            f"svc    {self.service.row()}",
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "spec": self.spec,
            "wall_s": self.wall_s,
            "tasks": {
                "submitted": self.tasks_submitted,
                "completed": self.tasks_completed,
                "lost": self.tasks_lost,
                "duplicates": self.duplicates,
                "phantoms": self.phantoms,
                "resubmits": self.resubmits,
                "bounce_give_ups": self.bounce_give_ups,
                "timeout_give_ups": self.timeout_give_ups,
            },
            "throughput_tps": self.throughput_tps,
            "priority_inversions": self.priority_inversions,
            "mean_queue_depth": self.mean_queue_depth(),
            "end_to_end": hist_summary(self.e2e),
            "queue_delay": hist_summary(self.queue_delay),
            "service": hist_summary(self.service),
            "sched_stats": dict(self.sched_stats),
            "switch_counters": dict(self.switch_counters),
            "executor_counters": dict(self.executor_counters),
            "client_counters": dict(self.client_counters),
            "max_loadgen_lag_ns": self.max_loadgen_lag_ns,
        }

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path


def load_result(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Load a saved live result through the shared persist validator."""
    return persist.load_result(path, expected_schema=SCHEMA)
